package core

import (
	"errors"
	"fmt"
	"sort"
	"time"

	"github.com/hpclab/datagrid/internal/gridstate"
	"github.com/hpclab/datagrid/internal/info"
)

// viewEntry is one host's memoized outcome under a pinned snapshot: the
// report and its cost-model score, or the error the snapshot build stored.
type viewEntry struct {
	report info.HostReport
	score  float64
	err    error
}

// SnapshotView scores candidates against one pinned grid-state snapshot.
// Every tracked host's report and score is memoized when the view is
// built, so ranking N logical files costs N catalog lookups plus sorts —
// no substrate queries. The view is immutable after PinView returns it;
// Rank and SelectBest are safe to call from any number of goroutines
// concurrently, provided the replica catalog is not mutated meanwhile and
// the configured selector is stateless (CostModelSelector and the other
// value-type selectors are; *RoundRobinSelector is not).
type SnapshotView struct {
	srv  *SelectionServer
	snap *gridstate.Snapshot
	memo map[string]viewEntry
}

// PinView pins the server's current grid-state snapshot (rebuilding it if
// the clock or a substrate moved) and returns a view scoring against it.
// Views are memoized per epoch: pinning twice without substrate movement
// returns the same view. Must run on the simulation goroutine; the
// returned view may then be shared freely.
func (s *SelectionServer) PinView(now time.Duration) *SnapshotView {
	snap := s.infoSrv.Snapshot(now)
	if v := s.view; v != nil && v.snap == snap {
		return v
	}
	memo := make(map[string]viewEntry, len(snap.Hosts()))
	for _, h := range snap.Hosts() {
		rep, err := info.ReportFrom(snap, h)
		if err != nil {
			memo[h] = viewEntry{err: err}
			continue
		}
		memo[h] = viewEntry{report: rep, score: Score(rep, s.weights)}
	}
	v := &SnapshotView{srv: s, snap: snap, memo: memo}
	s.view = v
	return v
}

// Snapshot returns the pinned snapshot backing this view.
func (v *SnapshotView) Snapshot() *gridstate.Snapshot { return v.snap }

// Epoch returns the pinned snapshot's epoch.
func (v *SnapshotView) Epoch() uint64 { return v.snap.Epoch() }

// Rank scores every registered replica of the logical file against the
// pinned snapshot and returns the candidates sorted best-first, with
// exactly SelectionServer.Rank's semantics: replicas without monitoring
// data are skipped, and ErrNoUsableReplica is returned if none remain.
// Hosts the snapshot does not cover are treated as unmonitored — a view
// cannot fall back to the live pull path without breaking its lock-free
// contract.
func (v *SnapshotView) Rank(logical string) ([]Candidate, error) {
	locs, err := v.srv.catalog.Locations(logical)
	if err != nil {
		return nil, err
	}
	cands := make([]Candidate, 0, len(locs))
	for _, loc := range locs {
		e, ok := v.memo[loc.Host]
		if !ok {
			continue
		}
		if e.err != nil {
			if errors.Is(e.err, info.ErrNoData) {
				continue
			}
			return nil, e.err
		}
		cands = append(cands, Candidate{Location: loc, Report: e.report, Score: e.score})
	}
	if len(cands) == 0 {
		return nil, fmt.Errorf("%w: %q has %d replicas, none monitored", ErrNoUsableReplica, logical, len(locs))
	}
	sort.SliceStable(cands, func(i, j int) bool {
		if cands[i].Score != cands[j].Score {
			return cands[i].Score > cands[j].Score
		}
		return cands[i].Location.String() < cands[j].Location.String()
	})
	return cands, nil
}

// SelectBest returns the server's selector's choice among the view-ranked
// candidates of the logical file.
func (v *SnapshotView) SelectBest(logical string) (Candidate, error) {
	cands, err := v.Rank(logical)
	if err != nil {
		return Candidate{}, err
	}
	return v.srv.pick(cands)
}

// pick applies the configured selector with the same bounds check as
// SelectBest.
func (s *SelectionServer) pick(cands []Candidate) (Candidate, error) {
	i, err := s.selector.Select(cands)
	if err != nil {
		return Candidate{}, err
	}
	if i < 0 || i >= len(cands) {
		return Candidate{}, fmt.Errorf("core: selector %q returned out-of-range index %d", s.selector.Name(), i)
	}
	return cands[i], nil
}

// RankHosts returns the hosts holding the logical file ordered best-first
// for a failover engine: cost-model-scored hosts first (ties toward the
// smaller name), then hosts without monitoring data in name order — when
// replicas keep failing, an unmonitored copy is still worth an attempt
// before giving up. alive, when non-nil, filters the candidates (hosts it
// rejects are dropped entirely). Must run on the simulation goroutine (it
// pins the current snapshot).
func (s *SelectionServer) RankHosts(logical string, now time.Duration, alive func(string) bool) ([]string, error) {
	hosts, err := s.catalog.HostsWith(logical)
	if err != nil {
		return nil, err
	}
	v := s.PinView(now)
	type scored struct {
		host  string
		score float64
	}
	var ranked []scored
	var blind []string
	for _, h := range hosts {
		if alive != nil && !alive(h) {
			continue
		}
		if e, ok := v.memo[h]; ok && e.err == nil {
			ranked = append(ranked, scored{host: h, score: e.score})
			continue
		}
		blind = append(blind, h)
	}
	sort.SliceStable(ranked, func(i, j int) bool {
		if ranked[i].score != ranked[j].score {
			return ranked[i].score > ranked[j].score
		}
		return ranked[i].host < ranked[j].host
	})
	out := make([]string, 0, len(ranked)+len(blind))
	for _, r := range ranked {
		out = append(out, r.host)
	}
	out = append(out, blind...) // already name-sorted: HostsWith sorts
	return out, nil
}

// BatchItem is one logical file's outcome in a batch selection: the ranked
// candidates, the selector's choice (for SelectBestBatch), or the error
// that stopped that file. Files in a batch fail independently.
type BatchItem struct {
	Logical    string
	Candidates []Candidate
	Best       Candidate
	Err        error
}

// RankBatch ranks every logical file against a single pinned snapshot, so
// N files cost one snapshot validation instead of N×candidates substrate
// pulls. Must run on the simulation goroutine (it may republish the
// snapshot).
func (s *SelectionServer) RankBatch(logicals []string, now time.Duration) []BatchItem {
	v := s.PinView(now)
	items := make([]BatchItem, len(logicals))
	for i, lg := range logicals {
		cands, err := v.Rank(lg)
		items[i] = BatchItem{Logical: lg, Candidates: cands, Err: err}
	}
	return items
}

// SelectBestBatch ranks and selects for every logical file against a
// single pinned snapshot.
func (s *SelectionServer) SelectBestBatch(logicals []string, now time.Duration) []BatchItem {
	v := s.PinView(now)
	items := make([]BatchItem, len(logicals))
	for i, lg := range logicals {
		cands, err := v.Rank(lg)
		if err != nil {
			items[i] = BatchItem{Logical: lg, Err: err}
			continue
		}
		best, err := s.pick(cands)
		items[i] = BatchItem{Logical: lg, Candidates: cands, Best: best, Err: err}
	}
	return items
}
