package core

import (
	"errors"
	"fmt"
	"sort"
	"time"

	"github.com/hpclab/datagrid/internal/gridstate"
	"github.com/hpclab/datagrid/internal/info"
	"github.com/hpclab/datagrid/internal/replica"
)

// SnapshotSource yields epoch-stamped grid-state snapshots. Both
// *info.Server (the full NWS/MDS/sysstat monitoring stack) and
// *gridstate.Publisher (a bare publisher over any Builder) satisfy it,
// so a region selector can run against either — the full stack in
// paper-scale worlds, a thin publisher at planet scale where deploying
// per-host monitors would dominate the simulation.
type SnapshotSource interface {
	Snapshot(now time.Duration) *gridstate.Snapshot
}

// RegionSelector is the lower tier of hierarchical selection: it ranks
// ONLY its region's catalog shard against its region's snapshot — a
// GIIS-style aggregation point. It never sees other regions' hosts, so
// its cost is bounded by the shard, not the grid.
//
// Must run on the simulation goroutine (pinning a snapshot may rebuild
// it); the per-epoch memo follows the SnapshotView discipline.
type RegionSelector struct {
	region  string
	shard   *replica.Catalog
	source  SnapshotSource
	weights Weights

	snap *gridstate.Snapshot
	memo map[string]viewEntry

	// scanned counts candidate locations scored since creation; maxRank
	// is the largest single Rank's location count — the proof obligation
	// that no rank ever exceeded the shard.
	scanned uint64
	maxRank int
}

// NewRegionSelector wires a selector for one region. shard must be the
// region's replica shard (replica.ShardedCatalog.Shard), source the
// region's snapshot source covering the region's hosts.
func NewRegionSelector(region string, shard *replica.Catalog, source SnapshotSource, weights Weights) (*RegionSelector, error) {
	if region == "" {
		return nil, errors.New("core: region selector needs a region name")
	}
	if shard == nil {
		return nil, fmt.Errorf("core: region selector %q needs a catalog shard", region)
	}
	if source == nil {
		return nil, fmt.Errorf("core: region selector %q needs a snapshot source", region)
	}
	if err := weights.Validate(); err != nil {
		return nil, err
	}
	return &RegionSelector{region: region, shard: shard, source: source, weights: weights}, nil
}

// Region returns the region this selector aggregates.
func (r *RegionSelector) Region() string { return r.region }

// pin refreshes the per-epoch memo when the region snapshot moved.
func (r *RegionSelector) pin(now time.Duration) {
	snap := r.source.Snapshot(now)
	if snap == r.snap {
		return
	}
	memo := make(map[string]viewEntry, len(snap.Hosts()))
	for _, h := range snap.Hosts() {
		rep, err := info.ReportFrom(snap, h)
		if err != nil {
			memo[h] = viewEntry{err: err}
			continue
		}
		memo[h] = viewEntry{report: rep, score: Score(rep, r.weights)}
	}
	r.snap, r.memo = snap, memo
}

// Rank scores the region's replicas of the logical file against the
// region snapshot, sorted best-first with SelectionServer.Rank's exact
// semantics (unmonitored replicas skipped; ErrNoUsableReplica when none
// remain). The scan is bounded by the shard's location list.
func (r *RegionSelector) Rank(logical string, now time.Duration) ([]Candidate, error) {
	locs, err := r.shard.Locations(logical)
	if err != nil {
		return nil, err
	}
	r.pin(now)
	r.scanned += uint64(len(locs))
	if len(locs) > r.maxRank {
		r.maxRank = len(locs)
	}
	cands := make([]Candidate, 0, len(locs))
	for _, loc := range locs {
		e, ok := r.memo[loc.Host]
		if !ok {
			continue
		}
		if e.err != nil {
			if errors.Is(e.err, info.ErrNoData) {
				continue
			}
			return nil, e.err
		}
		cands = append(cands, Candidate{Location: loc, Report: e.report, Score: e.score})
	}
	if len(cands) == 0 {
		return nil, fmt.Errorf("%w: %q has %d replicas in %s, none monitored",
			ErrNoUsableReplica, logical, len(locs), r.region)
	}
	sort.SliceStable(cands, func(i, j int) bool {
		if cands[i].Score != cands[j].Score {
			return cands[i].Score > cands[j].Score
		}
		return cands[i].Location.String() < cands[j].Location.String()
	})
	return cands, nil
}

// Best returns the region's top candidate — what the selector reports
// upward to the merge tier.
func (r *RegionSelector) Best(logical string, now time.Duration) (Candidate, error) {
	cands, err := r.Rank(logical, now)
	if err != nil {
		return Candidate{}, err
	}
	return cands[0], nil
}

// HierarchyStats is the hierarchical server's cumulative scan
// accounting — the observable proof that selection work is bounded by
// shards, not the world.
type HierarchyStats struct {
	// Selections is the number of SelectBest/Rank calls served.
	Selections uint64
	// RegionsConsulted is the total region selectors asked (only regions
	// actually holding a replica are ever consulted).
	RegionsConsulted uint64
	// HostsScanned is the total candidate locations scored across all
	// region ranks.
	HostsScanned uint64
	// MaxSingleRank is the largest location count any single region rank
	// scanned — must never exceed the largest shard.
	MaxSingleRank int
}

// HierarchicalServer is the thin top tier: it asks RegionsWith for the
// regions holding the file, collects each region selector's best, and
// merges per-region bests by (score desc, location asc) — the same
// order the flat server sorts by, so for the cost-model selector the
// hierarchical choice equals the flat choice while scanning only the
// involved shards.
type HierarchicalServer struct {
	catalog  *replica.ShardedCatalog
	weights  Weights
	selector Selector
	regions  map[string]*RegionSelector
	stats    HierarchyStats
}

// NewHierarchicalServer wires the top tier over a sharded catalog.
// selector defaults to the cost model with the given weights when nil.
func NewHierarchicalServer(catalog *replica.ShardedCatalog, weights Weights, selector Selector) (*HierarchicalServer, error) {
	if catalog == nil {
		return nil, errors.New("core: hierarchical server needs a sharded catalog")
	}
	if err := weights.Validate(); err != nil {
		return nil, err
	}
	if selector == nil {
		selector = CostModelSelector{Weights: weights}
	}
	return &HierarchicalServer{
		catalog:  catalog,
		weights:  weights,
		selector: selector,
		regions:  make(map[string]*RegionSelector),
	}, nil
}

// AddRegion registers the snapshot source for one region and builds its
// selector over the region's shard. The shard must already exist (at
// least one replica registered in the region).
func (h *HierarchicalServer) AddRegion(region string, source SnapshotSource) error {
	if _, dup := h.regions[region]; dup {
		return fmt.Errorf("core: region %q already registered", region)
	}
	shard := h.catalog.Shard(region)
	if shard == nil {
		return fmt.Errorf("core: region %q has no catalog shard yet", region)
	}
	sel, err := NewRegionSelector(region, shard, source, h.weights)
	if err != nil {
		return err
	}
	h.regions[region] = sel
	return nil
}

// Regions lists the registered regions, sorted.
func (h *HierarchicalServer) Regions() []string {
	out := make([]string, 0, len(h.regions))
	for r := range h.regions {
		out = append(out, r)
	}
	sort.Strings(out)
	return out
}

// Stats returns the cumulative scan accounting.
func (h *HierarchicalServer) Stats() HierarchyStats { return h.stats }

// Rank returns the per-region bests of the logical file merged
// best-first. Regions whose replicas are all unmonitored are skipped;
// ErrNoUsableReplica is returned when every region is. A region holding
// replicas but never registered via AddRegion is an error — silently
// ignoring it would hide misconfiguration.
func (h *HierarchicalServer) Rank(logical string, now time.Duration) ([]Candidate, error) {
	regions, err := h.catalog.RegionsWith(logical)
	if err != nil {
		return nil, err
	}
	h.stats.Selections++
	merged := make([]Candidate, 0, len(regions))
	for _, region := range regions {
		sel, ok := h.regions[region]
		if !ok {
			return nil, fmt.Errorf("core: %q has replicas in unregistered region %q", logical, region)
		}
		h.stats.RegionsConsulted++
		before := sel.scanned
		best, err := sel.Best(logical, now)
		h.stats.HostsScanned += sel.scanned - before
		if sel.maxRank > h.stats.MaxSingleRank {
			h.stats.MaxSingleRank = sel.maxRank
		}
		if err != nil {
			if errors.Is(err, ErrNoUsableReplica) {
				continue
			}
			return nil, err
		}
		merged = append(merged, best)
	}
	if len(merged) == 0 {
		return nil, fmt.Errorf("%w: %q monitored in none of its %d regions",
			ErrNoUsableReplica, logical, len(regions))
	}
	sort.SliceStable(merged, func(i, j int) bool {
		if merged[i].Score != merged[j].Score {
			return merged[i].Score > merged[j].Score
		}
		return merged[i].Location.String() < merged[j].Location.String()
	})
	return merged, nil
}

// SelectBest applies the configured selector to the merged per-region
// bests. With the cost-model selector this equals flat selection's
// choice: the globally best candidate is necessarily its own region's
// best, so it survives the merge, and both tiers order by (score desc,
// location asc).
func (h *HierarchicalServer) SelectBest(logical string, now time.Duration) (Candidate, error) {
	merged, err := h.Rank(logical, now)
	if err != nil {
		return Candidate{}, err
	}
	i, err := h.selector.Select(merged)
	if err != nil {
		return Candidate{}, err
	}
	if i < 0 || i >= len(merged) {
		return Candidate{}, fmt.Errorf("core: selector %q returned out-of-range index %d", h.selector.Name(), i)
	}
	return merged[i], nil
}
