package core

import (
	"errors"
	"sync"
	"testing"
	"time"

	"github.com/hpclab/datagrid/internal/replica"
)

// TestViewRankMatchesServerRank is the batch-vs-live equivalence check:
// a pinned view must rank exactly as SelectionServer.Rank does at the
// same instant.
func TestViewRankMatchesServerRank(t *testing.T) {
	p := buildPipeline(t)
	for host, load := range map[string]float64{"hit0": 0.5, "lz02": 0.3} {
		h, _ := p.tb.Host(host)
		if err := h.SetBaseCPULoad(load); err != nil {
			t.Fatal(err)
		}
	}
	if err := p.eng.RunUntil(2 * time.Minute); err != nil {
		t.Fatal(err)
	}
	live, err := p.sel.Rank("file-a", p.eng.Now())
	if err != nil {
		t.Fatal(err)
	}
	view := p.sel.PinView(p.eng.Now())
	batch, err := view.Rank("file-a")
	if err != nil {
		t.Fatal(err)
	}
	if len(batch) != len(live) {
		t.Fatalf("view ranked %d candidates, live ranked %d", len(batch), len(live))
	}
	for i := range live {
		if batch[i] != live[i] {
			t.Fatalf("candidate %d diverged:\nview: %+v\nlive: %+v", i, batch[i], live[i])
		}
	}
}

func TestPinViewMemoizesPerEpoch(t *testing.T) {
	p := buildPipeline(t)
	if err := p.eng.RunUntil(time.Minute); err != nil {
		t.Fatal(err)
	}
	v1 := p.sel.PinView(p.eng.Now())
	v2 := p.sel.PinView(p.eng.Now())
	if v1 != v2 {
		t.Fatal("same epoch must return the same view")
	}
	if err := p.eng.RunUntil(time.Minute + 30*time.Second); err != nil {
		t.Fatal(err)
	}
	v3 := p.sel.PinView(p.eng.Now())
	if v3 == v1 || v3.Epoch() <= v1.Epoch() {
		t.Fatalf("after monitors moved, epoch %d must exceed %d", v3.Epoch(), v1.Epoch())
	}
}

func TestViewSelectBestMatchesServer(t *testing.T) {
	p := buildPipeline(t)
	if err := p.eng.RunUntil(2 * time.Minute); err != nil {
		t.Fatal(err)
	}
	live, err := p.sel.SelectBest("file-a", p.eng.Now())
	if err != nil {
		t.Fatal(err)
	}
	view := p.sel.PinView(p.eng.Now())
	batch, err := view.SelectBest("file-a")
	if err != nil {
		t.Fatal(err)
	}
	if batch != live {
		t.Fatalf("view chose %+v, live chose %+v", batch, live)
	}
}

func TestRankBatchManyLogicals(t *testing.T) {
	p := buildPipeline(t)
	// Register extra logical files with different replica subsets.
	logicals := []string{"file-a"}
	subsets := map[string][]string{
		"file-b": {"alpha4", "hit0"},
		"file-c": {"lz02"},
		"file-d": {"hit0", "lz02"},
	}
	for name, hosts := range subsets {
		if err := p.catalog.CreateLogical(replica.LogicalFile{Name: name, SizeBytes: 1 << 20}); err != nil {
			t.Fatal(err)
		}
		for _, h := range hosts {
			if err := p.catalog.Register(name, replica.Location{Host: h, Path: "/data/" + name}); err != nil {
				t.Fatal(err)
			}
		}
		logicals = append(logicals, name)
	}
	if err := p.eng.RunUntil(2 * time.Minute); err != nil {
		t.Fatal(err)
	}
	items := p.sel.RankBatch(logicals, p.eng.Now())
	if len(items) != len(logicals) {
		t.Fatalf("batch returned %d items for %d logicals", len(items), len(logicals))
	}
	for i, it := range items {
		if it.Logical != logicals[i] {
			t.Fatalf("item %d is %q, want %q", i, it.Logical, logicals[i])
		}
		if it.Err != nil {
			t.Fatalf("%s: %v", it.Logical, it.Err)
		}
		want := 3
		if hosts, ok := subsets[it.Logical]; ok {
			want = len(hosts)
		}
		if len(it.Candidates) != want {
			t.Fatalf("%s ranked %d candidates, want %d", it.Logical, len(it.Candidates), want)
		}
		// Every item's reports carry the same snapshot instant.
		for _, c := range it.Candidates {
			if c.Report.At != items[0].Candidates[0].Report.At {
				t.Fatalf("mixed snapshot instants in one batch: %v vs %v",
					c.Report.At, items[0].Candidates[0].Report.At)
			}
		}
	}
	// Per-logical results equal the individually ranked ones.
	for _, it := range items {
		live, err := p.sel.Rank(it.Logical, p.eng.Now())
		if err != nil {
			t.Fatal(err)
		}
		for i := range live {
			if it.Candidates[i] != live[i] {
				t.Fatalf("%s candidate %d diverged", it.Logical, i)
			}
		}
	}
}

func TestBatchFailsPerLogical(t *testing.T) {
	p := buildPipeline(t)
	// file-ghost has one replica on lz04, which the deployment does not
	// monitor; file-nope does not exist at all.
	if err := p.catalog.CreateLogical(replica.LogicalFile{Name: "file-ghost", SizeBytes: 1}); err != nil {
		t.Fatal(err)
	}
	if err := p.catalog.Register("file-ghost", replica.Location{Host: "lz04", Path: "/x"}); err != nil {
		t.Fatal(err)
	}
	if err := p.eng.RunUntil(time.Minute); err != nil {
		t.Fatal(err)
	}
	items := p.sel.SelectBestBatch([]string{"file-a", "file-ghost", "file-nope"}, p.eng.Now())
	if items[0].Err != nil || items[0].Best.Location.Host == "" {
		t.Fatalf("file-a should select: %+v", items[0])
	}
	if !errors.Is(items[1].Err, ErrNoUsableReplica) {
		t.Fatalf("file-ghost err = %v, want ErrNoUsableReplica", items[1].Err)
	}
	if items[2].Err == nil {
		t.Fatal("unknown logical must fail its item")
	}
}

func TestViewConcurrentRank(t *testing.T) {
	// The lock-free contract: one pinned view may serve many selector
	// goroutines at once. Run under -race.
	p := buildPipeline(t)
	if err := p.eng.RunUntil(2 * time.Minute); err != nil {
		t.Fatal(err)
	}
	view := p.sel.PinView(p.eng.Now())
	want, err := view.Rank("file-a")
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				got, err := view.Rank("file-a")
				if err != nil {
					t.Errorf("Rank: %v", err)
					return
				}
				for j := range want {
					if got[j] != want[j] {
						t.Errorf("concurrent rank diverged at %d", j)
						return
					}
				}
				if _, err := view.SelectBest("file-a"); err != nil {
					t.Errorf("SelectBest: %v", err)
					return
				}
			}
		}()
	}
	wg.Wait()
}
