package core

import (
	"errors"
	"math"
	"testing"
	"testing/quick"
	"time"

	"github.com/hpclab/datagrid/internal/cluster"
	"github.com/hpclab/datagrid/internal/info"
	"github.com/hpclab/datagrid/internal/replica"
	"github.com/hpclab/datagrid/internal/simulation"
)

func TestWeightsValidate(t *testing.T) {
	if err := PaperWeights.Validate(); err != nil {
		t.Fatal(err)
	}
	if err := (Weights{-0.1, 0.5, 0.6}).Validate(); err == nil {
		t.Fatal("negative weight should be rejected")
	}
	if err := (Weights{}).Validate(); err == nil {
		t.Fatal("all-zero weights should be rejected")
	}
}

func TestWeightsNormalize(t *testing.T) {
	w, err := (Weights{8, 1, 1}).Normalize()
	if err != nil {
		t.Fatal(err)
	}
	if w != PaperWeights {
		t.Fatalf("Normalize = %+v, want paper weights", w)
	}
	if _, err := (Weights{}).Normalize(); err == nil {
		t.Fatal("normalizing zero weights should fail")
	}
}

func report(bw, cpu, io float64) info.HostReport {
	return info.HostReport{BandwidthPercent: bw, CPUIdlePercent: cpu, IOIdlePercent: io}
}

func TestScoreFormula(t *testing.T) {
	// The exact formula (1) with the paper's 80/10/10 weights.
	r := report(50, 80, 90)
	got := Score(r, PaperWeights)
	want := 50*0.8 + 80*0.1 + 90*0.1
	if math.Abs(got-want) > 1e-12 {
		t.Fatalf("Score = %v, want %v", got, want)
	}
}

func TestScoreWeightSensitivity(t *testing.T) {
	fastNet := report(90, 10, 10)
	idleCPU := report(10, 90, 90)
	if Score(fastNet, PaperWeights) <= Score(idleCPU, PaperWeights) {
		t.Fatal("with 80% bandwidth weight, the fast-network host must win")
	}
	cpuHeavy := Weights{Bandwidth: 0.1, CPU: 0.8, IO: 0.1}
	if Score(fastNet, cpuHeavy) >= Score(idleCPU, cpuHeavy) {
		t.Fatal("with CPU-heavy weights, the idle host must win")
	}
}

func cands(scores ...float64) []Candidate {
	out := make([]Candidate, len(scores))
	for i, s := range scores {
		out[i].Score = s
		out[i].Report = report(s, s, s)
		out[i].Location = replica.Location{Host: string(rune('a' + i)), Path: "/f"}
	}
	return out
}

func TestCostModelSelector(t *testing.T) {
	s := CostModelSelector{Weights: PaperWeights}
	i, err := s.Select(cands(10, 90, 50))
	if err != nil || i != 1 {
		t.Fatalf("Select = %d, %v; want 1", i, err)
	}
	if _, err := s.Select(nil); !errors.Is(err, ErrNoCandidates) {
		t.Fatalf("empty err = %v", err)
	}
	bad := CostModelSelector{}
	if _, err := bad.Select(cands(1)); err == nil {
		t.Fatal("zero weights should fail selection")
	}
	if s.Name() != "cost-model" {
		t.Fatalf("name = %q", s.Name())
	}
}

func TestRandomSelector(t *testing.T) {
	s := NewRandomSelector(1)
	counts := map[int]int{}
	for i := 0; i < 300; i++ {
		k, err := s.Select(cands(1, 2, 3))
		if err != nil {
			t.Fatal(err)
		}
		counts[k]++
	}
	for i := 0; i < 3; i++ {
		if counts[i] == 0 {
			t.Fatalf("random selector never picked %d: %v", i, counts)
		}
	}
	if _, err := s.Select(nil); !errors.Is(err, ErrNoCandidates) {
		t.Fatal("empty should error")
	}
}

func TestRoundRobinSelector(t *testing.T) {
	s := &RoundRobinSelector{}
	var got []int
	for i := 0; i < 6; i++ {
		k, err := s.Select(cands(1, 2, 3))
		if err != nil {
			t.Fatal(err)
		}
		got = append(got, k)
	}
	want := []int{0, 1, 2, 0, 1, 2}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("round robin = %v, want %v", got, want)
		}
	}
	if _, err := s.Select(nil); !errors.Is(err, ErrNoCandidates) {
		t.Fatal("empty should error")
	}
}

func TestBandwidthOnlySelector(t *testing.T) {
	s := BandwidthOnlySelector{}
	cs := []Candidate{
		{Report: report(20, 99, 99)},
		{Report: report(80, 1, 1)},
	}
	i, err := s.Select(cs)
	if err != nil || i != 1 {
		t.Fatalf("Select = %d, %v; want bandwidth winner", i, err)
	}
	if _, err := s.Select(nil); !errors.Is(err, ErrNoCandidates) {
		t.Fatal("empty should error")
	}
}

// Property: CostModelSelector always returns the argmax of Score.
func TestPropertySelectorPicksArgmax(t *testing.T) {
	f := func(raw []uint16) bool {
		if len(raw) == 0 {
			return true
		}
		if len(raw) > 32 {
			raw = raw[:32]
		}
		cs := make([]Candidate, len(raw))
		best, bestVal := 0, -1.0
		for i, v := range raw {
			score := float64(v % 10000)
			cs[i].Score = score
			if score > bestVal {
				best, bestVal = i, score
			}
		}
		got, err := (CostModelSelector{Weights: PaperWeights}).Select(cs)
		return err == nil && cs[got].Score == cs[best].Score
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// --- integration: full pipeline on the paper testbed ---

type pipeline struct {
	eng     *simulation.Engine
	tb      *cluster.Testbed
	dep     *info.Deployment
	catalog *replica.Catalog
	sel     *SelectionServer
}

// buildPipeline stands up testbed + monitors + catalog with file-a
// replicated on alpha4, hit0 and lz02 (the Table 1 scenario, user on
// alpha1).
func buildPipeline(t *testing.T) *pipeline {
	t.Helper()
	eng := simulation.NewEngine()
	tb, err := cluster.NewPaperTestbed(eng, 1)
	if err != nil {
		t.Fatal(err)
	}
	dep, err := info.Deploy(tb, info.DeploymentConfig{
		Local:   "alpha1",
		Remotes: []string{"alpha4", "hit0", "lz02"},
		Seed:    7,
	})
	if err != nil {
		t.Fatal(err)
	}
	catalog := replica.NewCatalog()
	if err := catalog.CreateLogical(replica.LogicalFile{Name: "file-a", SizeBytes: 1 << 30}); err != nil {
		t.Fatal(err)
	}
	for _, h := range []string{"alpha4", "hit0", "lz02"} {
		if err := catalog.Register("file-a", replica.Location{Host: h, Path: "/data/file-a"}); err != nil {
			t.Fatal(err)
		}
	}
	sel, err := NewSelectionServer(catalog, dep.Server, PaperWeights, nil)
	if err != nil {
		t.Fatal(err)
	}
	return &pipeline{eng: eng, tb: tb, dep: dep, catalog: catalog, sel: sel}
}

func TestSelectionServerValidation(t *testing.T) {
	p := buildPipeline(t)
	if _, err := NewSelectionServer(nil, p.dep.Server, PaperWeights, nil); err == nil {
		t.Fatal("nil catalog should be rejected")
	}
	if _, err := NewSelectionServer(p.catalog, nil, PaperWeights, nil); err == nil {
		t.Fatal("nil info server should be rejected")
	}
	if _, err := NewSelectionServer(p.catalog, p.dep.Server, Weights{}, nil); err == nil {
		t.Fatal("zero weights should be rejected")
	}
	if p.sel.Weights() != PaperWeights {
		t.Fatalf("Weights = %+v", p.sel.Weights())
	}
}

func TestRankPrefersLocalSiteReplica(t *testing.T) {
	p := buildPipeline(t)
	// Make the remote candidates visibly worse.
	for host, load := range map[string]float64{"hit0": 0.5, "lz02": 0.3} {
		h, _ := p.tb.Host(host)
		if err := h.SetBaseCPULoad(load); err != nil {
			t.Fatal(err)
		}
	}
	if err := p.eng.RunUntil(120 * time.Second); err != nil {
		t.Fatal(err)
	}
	ranked, err := p.sel.Rank("file-a", p.eng.Now())
	if err != nil {
		t.Fatal(err)
	}
	if len(ranked) != 3 {
		t.Fatalf("ranked %d candidates, want 3", len(ranked))
	}
	// alpha4 shares the 1 Gb/s THU LAN with alpha1: it must rank first,
	// and the 30 Mb/s Li-Zen host must rank last — the Table 1 ordering.
	if ranked[0].Location.Host != "alpha4" {
		t.Fatalf("best = %s, want alpha4 (ranked: %v, %v, %v)",
			ranked[0].Location.Host, ranked[0], ranked[1], ranked[2])
	}
	if ranked[2].Location.Host != "lz02" {
		t.Fatalf("worst = %s, want lz02", ranked[2].Location.Host)
	}
	for i := 1; i < len(ranked); i++ {
		if ranked[i].Score > ranked[i-1].Score {
			t.Fatal("Rank output not sorted descending")
		}
	}
}

func TestRankSkipsUnmonitoredReplica(t *testing.T) {
	p := buildPipeline(t)
	// lz04 has a replica but no sensors.
	if err := p.catalog.Register("file-a", replica.Location{Host: "lz04", Path: "/data/file-a"}); err != nil {
		t.Fatal(err)
	}
	if err := p.eng.RunUntil(60 * time.Second); err != nil {
		t.Fatal(err)
	}
	ranked, err := p.sel.Rank("file-a", p.eng.Now())
	if err != nil {
		t.Fatal(err)
	}
	if len(ranked) != 3 {
		t.Fatalf("ranked %d, want 3 (unmonitored lz04 skipped)", len(ranked))
	}
}

func TestRankNoUsableReplica(t *testing.T) {
	p := buildPipeline(t)
	if err := p.catalog.CreateLogical(replica.LogicalFile{Name: "dark", SizeBytes: 10}); err != nil {
		t.Fatal(err)
	}
	if err := p.catalog.Register("dark", replica.Location{Host: "lz04", Path: "/x"}); err != nil {
		t.Fatal(err)
	}
	if err := p.eng.RunUntil(30 * time.Second); err != nil {
		t.Fatal(err)
	}
	if _, err := p.sel.Rank("dark", p.eng.Now()); !errors.Is(err, ErrNoUsableReplica) {
		t.Fatalf("err = %v, want ErrNoUsableReplica", err)
	}
	if _, err := p.sel.Rank("ghost", p.eng.Now()); !errors.Is(err, replica.ErrUnknownLogical) {
		t.Fatalf("err = %v, want ErrUnknownLogical", err)
	}
}

func TestRankHosts(t *testing.T) {
	p := buildPipeline(t)
	// lz04 holds a copy but has no sensors: it must rank after every
	// monitored host instead of being dropped — a failover engine still
	// wants to try it last.
	if err := p.catalog.Register("file-a", replica.Location{Host: "lz04", Path: "/data/file-a"}); err != nil {
		t.Fatal(err)
	}
	if err := p.eng.RunUntil(120 * time.Second); err != nil {
		t.Fatal(err)
	}
	hosts, err := p.sel.RankHosts("file-a", p.eng.Now(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(hosts) != 4 {
		t.Fatalf("RankHosts returned %v, want 4 hosts", hosts)
	}
	if hosts[0] != "alpha4" {
		t.Fatalf("best = %q, want alpha4 (got %v)", hosts[0], hosts)
	}
	if hosts[3] != "lz04" {
		t.Fatalf("unmonitored lz04 must rank last, got %v", hosts)
	}
	// The alive filter drops candidates entirely.
	hosts, err = p.sel.RankHosts("file-a", p.eng.Now(), func(h string) bool { return h != "alpha4" })
	if err != nil {
		t.Fatal(err)
	}
	for _, h := range hosts {
		if h == "alpha4" {
			t.Fatalf("filtered host alpha4 still present: %v", hosts)
		}
	}
	if len(hosts) != 3 {
		t.Fatalf("filtered RankHosts = %v, want 3 hosts", hosts)
	}
	if _, err := p.sel.RankHosts("ghost", p.eng.Now(), nil); !errors.Is(err, replica.ErrUnknownLogical) {
		t.Fatalf("err = %v, want ErrUnknownLogical", err)
	}
}

func TestSelectBest(t *testing.T) {
	p := buildPipeline(t)
	if err := p.eng.RunUntil(90 * time.Second); err != nil {
		t.Fatal(err)
	}
	best, err := p.sel.SelectBest("file-a", p.eng.Now())
	if err != nil {
		t.Fatal(err)
	}
	if best.Location.Host != "alpha4" {
		t.Fatalf("best = %s, want alpha4", best.Location.Host)
	}
	if best.Score <= 0 || best.Score > 100 {
		t.Fatalf("score = %v out of (0,100]", best.Score)
	}
}

// recordingTransfer is a replica.Transfer that completes instantly and
// remembers its invocations.
type recordingTransfer struct {
	calls []string
	fail  error
}

func (r *recordingTransfer) fn(srcHost, srcPath, dstHost, dstPath string, bytes int64, done func(error)) error {
	r.calls = append(r.calls, srcHost+"->"+dstHost+":"+dstPath)
	done(r.fail)
	return nil
}

func TestApplicationFetchRemote(t *testing.T) {
	p := buildPipeline(t)
	if err := p.eng.RunUntil(90 * time.Second); err != nil {
		t.Fatal(err)
	}
	tr := &recordingTransfer{}
	app, err := NewApplication(ApplicationConfig{Local: "alpha1"}, p.sel, tr.fn, p.eng)
	if err != nil {
		t.Fatal(err)
	}
	var got FetchResult
	var gotErr error
	if err := app.Fetch("file-a", func(r FetchResult, err error) { got, gotErr = r, err }); err != nil {
		t.Fatal(err)
	}
	if gotErr != nil {
		t.Fatal(gotErr)
	}
	if got.LocalHit {
		t.Fatal("fetch should not be a local hit")
	}
	if got.Chosen.Location.Host != "alpha4" {
		t.Fatalf("chosen = %s", got.Chosen.Location.Host)
	}
	if len(tr.calls) != 1 || tr.calls[0] != "alpha4->alpha1:/cache/file-a" {
		t.Fatalf("transfer calls = %v", tr.calls)
	}
}

func TestApplicationLocalHit(t *testing.T) {
	p := buildPipeline(t)
	if err := p.catalog.Register("file-a", replica.Location{Host: "alpha1", Path: "/data/file-a"}); err != nil {
		t.Fatal(err)
	}
	tr := &recordingTransfer{}
	app, err := NewApplication(ApplicationConfig{Local: "alpha1"}, p.sel, tr.fn, p.eng)
	if err != nil {
		t.Fatal(err)
	}
	var got FetchResult
	if err := app.Fetch("file-a", func(r FetchResult, err error) { got = r }); err != nil {
		t.Fatal(err)
	}
	if !got.LocalHit {
		t.Fatal("should be a local hit")
	}
	if len(tr.calls) != 0 {
		t.Fatalf("local hit must not transfer: %v", tr.calls)
	}
}

func TestApplicationRegisterFetched(t *testing.T) {
	p := buildPipeline(t)
	if err := p.eng.RunUntil(90 * time.Second); err != nil {
		t.Fatal(err)
	}
	tr := &recordingTransfer{}
	app, err := NewApplication(ApplicationConfig{Local: "alpha1", RegisterFetched: true}, p.sel, tr.fn, p.eng)
	if err != nil {
		t.Fatal(err)
	}
	if err := app.Fetch("file-a", func(FetchResult, error) {}); err != nil {
		t.Fatal(err)
	}
	hosts, err := p.catalog.HostsWith("file-a")
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, h := range hosts {
		if h == "alpha1" {
			found = true
		}
	}
	if !found {
		t.Fatalf("fetched copy not registered: %v", hosts)
	}
	// Second fetch must now be a local hit.
	var second FetchResult
	if err := app.Fetch("file-a", func(r FetchResult, err error) { second = r }); err != nil {
		t.Fatal(err)
	}
	if !second.LocalHit {
		t.Fatal("second fetch should hit the registered local copy")
	}
}

func TestApplicationTransferFailure(t *testing.T) {
	p := buildPipeline(t)
	if err := p.eng.RunUntil(90 * time.Second); err != nil {
		t.Fatal(err)
	}
	tr := &recordingTransfer{fail: errors.New("broken pipe")}
	app, err := NewApplication(ApplicationConfig{Local: "alpha1"}, p.sel, tr.fn, p.eng)
	if err != nil {
		t.Fatal(err)
	}
	var gotErr error
	if err := app.Fetch("file-a", func(_ FetchResult, err error) { gotErr = err }); err != nil {
		t.Fatal(err)
	}
	if gotErr == nil {
		t.Fatal("transfer failure should surface")
	}
}

func TestApplicationValidation(t *testing.T) {
	p := buildPipeline(t)
	tr := &recordingTransfer{}
	if _, err := NewApplication(ApplicationConfig{}, p.sel, tr.fn, p.eng); err == nil {
		t.Fatal("missing local should be rejected")
	}
	if _, err := NewApplication(ApplicationConfig{Local: "a"}, nil, tr.fn, p.eng); err == nil {
		t.Fatal("nil selection should be rejected")
	}
	if _, err := NewApplication(ApplicationConfig{Local: "a"}, p.sel, nil, p.eng); err == nil {
		t.Fatal("nil transfer should be rejected")
	}
	if _, err := NewApplication(ApplicationConfig{Local: "a"}, p.sel, tr.fn, nil); err == nil {
		t.Fatal("nil clock should be rejected")
	}
	app, err := NewApplication(ApplicationConfig{Local: "alpha1"}, p.sel, tr.fn, p.eng)
	if err != nil {
		t.Fatal(err)
	}
	if err := app.Fetch("file-a", nil); err == nil {
		t.Fatal("nil callback should be rejected")
	}
	if err := app.Fetch("ghost", func(FetchResult, error) {}); err == nil {
		t.Fatal("unknown logical should be rejected")
	}
}

func TestLatencyAwareSelector(t *testing.T) {
	near := Candidate{Report: info.HostReport{BandwidthPercent: 70, CPUIdlePercent: 50, IOIdlePercent: 50, LatencyMs: 1}}
	far := Candidate{Report: info.HostReport{BandwidthPercent: 75, CPUIdlePercent: 50, IOIdlePercent: 50, LatencyMs: 40}}
	// Plain cost model prefers the marginally-faster far host...
	plain := CostModelSelector{Weights: PaperWeights}
	cands := []Candidate{near, far}
	for i := range cands {
		cands[i].Score = Score(cands[i].Report, PaperWeights)
	}
	i, err := plain.Select(cands)
	if err != nil || i != 1 {
		t.Fatalf("plain Select = %d, %v; want far host", i, err)
	}
	// ...the latency-aware variant flips to the near one.
	aware := LatencyAwareSelector{Weights: PaperWeights, PenaltyPerMs: 0.5}
	i, err = aware.Select(cands)
	if err != nil || i != 0 {
		t.Fatalf("latency-aware Select = %d, %v; want near host", i, err)
	}
	if aware.Name() != "cost-model+latency" {
		t.Fatalf("name = %q", aware.Name())
	}
	if _, err := aware.Select(nil); !errors.Is(err, ErrNoCandidates) {
		t.Fatal("empty should error")
	}
	if _, err := (LatencyAwareSelector{Weights: PaperWeights, PenaltyPerMs: -1}).Select(cands); err == nil {
		t.Fatal("negative penalty should be rejected")
	}
	if _, err := (LatencyAwareSelector{}).Select(cands); err == nil {
		t.Fatal("zero weights should be rejected")
	}
}

func TestReportCarriesLatency(t *testing.T) {
	p := buildPipeline(t)
	if err := p.eng.RunUntil(60 * time.Second); err != nil {
		t.Fatal(err)
	}
	rep, err := p.dep.Server.Report("lz02", p.eng.Now())
	if err != nil {
		t.Fatal(err)
	}
	// lz02 -> alpha1 RTT is ~16 ms plus jitter; the deployment runs
	// latency sensors, so the report must carry a sane forecast.
	if rep.LatencyMs < 15 || rep.LatencyMs > 20 {
		t.Fatalf("LatencyMs = %v, want ~16-18", rep.LatencyMs)
	}
}

func TestRankRoutesAroundDeadHost(t *testing.T) {
	p := buildPipeline(t)
	if err := p.eng.RunUntil(2 * time.Minute); err != nil {
		t.Fatal(err)
	}
	// Kill the Li-Zen uplink; its probes stall and the series goes stale.
	lz := cluster.SwitchNode(cluster.SiteLiZen)
	thu := cluster.SwitchNode(cluster.SiteTHU)
	if err := p.tb.Network().SetLinkDown(lz, thu, true); err != nil {
		t.Fatal(err)
	}
	if err := p.eng.RunUntil(5 * time.Minute); err != nil {
		t.Fatal(err)
	}
	ranked, err := p.sel.Rank("file-a", p.eng.Now())
	if err != nil {
		t.Fatal(err)
	}
	if len(ranked) != 2 {
		t.Fatalf("ranked %d candidates, want 2 (lz02 unreachable)", len(ranked))
	}
	for _, c := range ranked {
		if c.Location.Host == "lz02" {
			t.Fatal("selection must not offer the unreachable replica")
		}
	}
	best, err := p.sel.SelectBest("file-a", p.eng.Now())
	if err != nil || best.Location.Host == "lz02" {
		t.Fatalf("SelectBest = %v, %v", best.Location.Host, err)
	}
}

// Property: Score is monotone non-decreasing in every factor.
func TestPropertyScoreMonotone(t *testing.T) {
	f := func(bw, cpu, io uint8, dbw, dcpu, dio uint8) bool {
		base := report(float64(bw%101), float64(cpu%101), float64(io%101))
		better := report(
			math.Min(100, base.BandwidthPercent+float64(dbw%50)),
			math.Min(100, base.CPUIdlePercent+float64(dcpu%50)),
			math.Min(100, base.IOIdlePercent+float64(dio%50)),
		)
		return Score(better, PaperWeights) >= Score(base, PaperWeights)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestFetchCollection(t *testing.T) {
	p := buildPipeline(t)
	// Second member of the collection, replicated on hit0 only.
	if err := p.catalog.CreateLogical(replica.LogicalFile{Name: "file-b", SizeBytes: 1 << 20}); err != nil {
		t.Fatal(err)
	}
	if err := p.catalog.Register("file-b", replica.Location{Host: "hit0", Path: "/data/file-b"}); err != nil {
		t.Fatal(err)
	}
	if err := p.catalog.CreateCollection("run"); err != nil {
		t.Fatal(err)
	}
	for _, f := range []string{"file-a", "file-b"} {
		if err := p.catalog.AddToCollection("run", f); err != nil {
			t.Fatal(err)
		}
	}
	if err := p.eng.RunUntil(90 * time.Second); err != nil {
		t.Fatal(err)
	}
	tr := &recordingTransfer{}
	app, err := NewApplication(ApplicationConfig{Local: "alpha1"}, p.sel, tr.fn, p.eng)
	if err != nil {
		t.Fatal(err)
	}
	var got CollectionResult
	var gotErr error
	called := false
	if err := app.FetchCollection("run", func(r CollectionResult, err error) {
		got, gotErr, called = r, err, true
	}); err != nil {
		t.Fatal(err)
	}
	if !called || gotErr != nil {
		t.Fatalf("collection staging: called=%v err=%v", called, gotErr)
	}
	if len(got.Results) != 2 {
		t.Fatalf("results = %d, want 2", len(got.Results))
	}
	// file-a comes from the best replica (alpha4); file-b has only hit0.
	if got.Results[0].Chosen.Location.Host != "alpha4" {
		t.Fatalf("file-a from %s", got.Results[0].Chosen.Location.Host)
	}
	if got.Results[1].Chosen.Location.Host != "hit0" {
		t.Fatalf("file-b from %s", got.Results[1].Chosen.Location.Host)
	}
	if len(tr.calls) != 2 {
		t.Fatalf("transfers = %v", tr.calls)
	}
	// Validation paths.
	if err := app.FetchCollection("run", nil); err == nil {
		t.Fatal("nil callback should be rejected")
	}
	if err := app.FetchCollection("ghost", func(CollectionResult, error) {}); err == nil {
		t.Fatal("unknown collection should be rejected")
	}
	if err := p.catalog.CreateCollection("empty"); err != nil {
		t.Fatal(err)
	}
	if err := app.FetchCollection("empty", func(CollectionResult, error) {}); err == nil {
		t.Fatal("empty collection should be rejected")
	}
}

func TestFetchCollectionPropagatesFailure(t *testing.T) {
	p := buildPipeline(t)
	if err := p.catalog.CreateCollection("run"); err != nil {
		t.Fatal(err)
	}
	if err := p.catalog.AddToCollection("run", "file-a"); err != nil {
		t.Fatal(err)
	}
	if err := p.eng.RunUntil(90 * time.Second); err != nil {
		t.Fatal(err)
	}
	tr := &recordingTransfer{fail: errors.New("link reset")}
	app, err := NewApplication(ApplicationConfig{Local: "alpha1"}, p.sel, tr.fn, p.eng)
	if err != nil {
		t.Fatal(err)
	}
	var gotErr error
	if err := app.FetchCollection("run", func(_ CollectionResult, err error) { gotErr = err }); err != nil {
		t.Fatal(err)
	}
	if gotErr == nil {
		t.Fatal("member failure should surface")
	}
}

// TestDiscoveryByCharacteristics walks the exact §4.3 flow: the user
// "specifies the characteristics of the desired data", the catalog
// resolves them to a logical file, and the pipeline fetches the best
// replica of it.
func TestDiscoveryByCharacteristics(t *testing.T) {
	p := buildPipeline(t)
	// file-a was registered without attributes in buildPipeline; add a
	// second file carrying queryable metadata.
	if err := p.catalog.CreateLogical(replica.LogicalFile{
		Name:      "nr-2005-07",
		SizeBytes: 512 << 20,
		Attributes: map[string]string{
			"type":   "biological-database",
			"format": "fasta",
		},
	}); err != nil {
		t.Fatal(err)
	}
	if err := p.catalog.Register("nr-2005-07", replica.Location{Host: "hit0", Path: "/db/nr"}); err != nil {
		t.Fatal(err)
	}
	if err := p.eng.RunUntil(90 * time.Second); err != nil {
		t.Fatal(err)
	}
	names := p.catalog.FindByAttributes(map[string]string{"type": "biological-database", "format": "fasta"})
	if len(names) != 1 || names[0] != "nr-2005-07" {
		t.Fatalf("discovery = %v", names)
	}
	tr := &recordingTransfer{}
	app, err := NewApplication(ApplicationConfig{Local: "alpha1"}, p.sel, tr.fn, p.eng)
	if err != nil {
		t.Fatal(err)
	}
	var got FetchResult
	if err := app.Fetch(names[0], func(r FetchResult, err error) {
		if err != nil {
			t.Errorf("fetch: %v", err)
		}
		got = r
	}); err != nil {
		t.Fatal(err)
	}
	if got.Chosen.Location.Host != "hit0" {
		t.Fatalf("discovered file fetched from %s", got.Chosen.Location.Host)
	}
}
