// Package core implements the paper's primary contribution: the replica
// selection cost model (§3.3) and the replica selection server that applies
// it (§3.1, Fig. 1), together with the baseline selectors used for
// comparison and the client-side application pipeline.
//
// The cost model scores a candidate replica host j, as seen from the local
// host i, as
//
//	Score(i→j) = BW_P(i→j)·BW_W + CPU_P(j)·CPU_W + IO_P(j)·IO_W
//
// where BW_P is the percentage of current to theoretical bandwidth on the
// path j→i, CPU_P is j's idle-CPU percentage, IO_P is j's idle-I/O
// percentage, and the three weights are set by the Data Grid administrator
// (the paper uses 80/10/10).
package core

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sort"
	"time"

	"github.com/hpclab/datagrid/internal/info"
	"github.com/hpclab/datagrid/internal/replica"
)

// Weights are the administrator-chosen factor weights of the cost model.
// They are fractions (0.8, not 80); Normalize scales any positive vector.
type Weights struct {
	Bandwidth float64
	CPU       float64
	IO        float64
}

// PaperWeights are the weights the paper settles on after measurement:
// bandwidth dominates at 80%, CPU and I/O each contribute 10% (§3.3).
var PaperWeights = Weights{Bandwidth: 0.8, CPU: 0.1, IO: 0.1}

// Validate checks the weights are non-negative and not all zero.
func (w Weights) Validate() error {
	if w.Bandwidth < 0 || w.CPU < 0 || w.IO < 0 {
		return fmt.Errorf("core: negative weight in %+v", w)
	}
	if w.Bandwidth+w.CPU+w.IO == 0 {
		return errors.New("core: all weights zero")
	}
	return nil
}

// Normalize returns the weights scaled to sum to 1.
func (w Weights) Normalize() (Weights, error) {
	if err := w.Validate(); err != nil {
		return Weights{}, err
	}
	sum := w.Bandwidth + w.CPU + w.IO
	return Weights{w.Bandwidth / sum, w.CPU / sum, w.IO / sum}, nil
}

// Score applies formula (1) to an information-server report. The result is
// in [0, 100] for normalized weights; higher is better.
func Score(r info.HostReport, w Weights) float64 {
	return r.BandwidthPercent*w.Bandwidth + r.CPUIdlePercent*w.CPU + r.IOIdlePercent*w.IO
}

// Candidate is one scored replica location.
type Candidate struct {
	Location replica.Location
	Report   info.HostReport
	Score    float64
}

// Selector picks one of the scored candidates. Implementations include the
// cost model itself and the baselines used in the ablation benchmarks.
type Selector interface {
	// Name identifies the selection policy.
	Name() string
	// Select returns the index of the chosen candidate.
	Select(cands []Candidate) (int, error)
}

// ErrNoCandidates is returned when selection is attempted over an empty set.
var ErrNoCandidates = errors.New("core: no candidates")

// CostModelSelector picks the candidate with the highest cost-model score.
type CostModelSelector struct {
	// Weights used for scoring; zero value is invalid — use PaperWeights.
	Weights Weights
}

// Name returns the policy name.
func (s CostModelSelector) Name() string { return "cost-model" }

// Select picks the highest-scoring candidate (ties break toward the
// earlier, i.e. lexicographically smaller, location for determinism).
func (s CostModelSelector) Select(cands []Candidate) (int, error) {
	if len(cands) == 0 {
		return 0, ErrNoCandidates
	}
	if err := s.Weights.Validate(); err != nil {
		return 0, err
	}
	best := 0
	for i := 1; i < len(cands); i++ {
		if cands[i].Score > cands[best].Score {
			best = i
		}
	}
	return best, nil
}

// RandomSelector picks uniformly at random — the "no information" baseline.
type RandomSelector struct {
	rng *rand.Rand
}

// NewRandomSelector returns a seeded random selector.
func NewRandomSelector(seed int64) *RandomSelector {
	return &RandomSelector{rng: rand.New(rand.NewSource(seed))}
}

// Name returns the policy name.
func (s *RandomSelector) Name() string { return "random" }

// Select picks a uniformly random candidate.
func (s *RandomSelector) Select(cands []Candidate) (int, error) {
	if len(cands) == 0 {
		return 0, ErrNoCandidates
	}
	return s.rng.Intn(len(cands)), nil
}

// RoundRobinSelector cycles through candidates — the "load spreading
// without information" baseline.
type RoundRobinSelector struct {
	next int
}

// Name returns the policy name.
func (s *RoundRobinSelector) Name() string { return "round-robin" }

// Select picks candidates cyclically across calls.
func (s *RoundRobinSelector) Select(cands []Candidate) (int, error) {
	if len(cands) == 0 {
		return 0, ErrNoCandidates
	}
	i := s.next % len(cands)
	s.next++
	return i, nil
}

// LatencyAwareSelector extends the cost model with a fourth system factor
// (the paper's future work #2: "refer to more system factors"): each
// millisecond of forecast round-trip time subtracts PenaltyPerMs points
// from the candidate's score. With many small files the per-transfer
// protocol handshakes are latency-bound, which the three base factors
// cannot see.
type LatencyAwareSelector struct {
	Weights Weights
	// PenaltyPerMs is the score deduction per millisecond of RTT.
	PenaltyPerMs float64
}

// Name returns the policy name.
func (s LatencyAwareSelector) Name() string { return "cost-model+latency" }

// Select picks the candidate with the highest latency-adjusted score.
func (s LatencyAwareSelector) Select(cands []Candidate) (int, error) {
	if len(cands) == 0 {
		return 0, ErrNoCandidates
	}
	if err := s.Weights.Validate(); err != nil {
		return 0, err
	}
	if s.PenaltyPerMs < 0 {
		return 0, fmt.Errorf("core: negative latency penalty %v", s.PenaltyPerMs)
	}
	best, bestScore := 0, math.Inf(-1)
	for i, c := range cands {
		score := Score(c.Report, s.Weights) - s.PenaltyPerMs*c.Report.LatencyMs
		if score > bestScore {
			best, bestScore = i, score
		}
	}
	return best, nil
}

// BandwidthOnlySelector scores on bandwidth percentage alone (weights
// 100/0/0) — the ablation showing what CPU and I/O awareness adds.
type BandwidthOnlySelector struct{}

// Name returns the policy name.
func (s BandwidthOnlySelector) Name() string { return "bandwidth-only" }

// Select picks the candidate with the highest bandwidth percentage.
func (s BandwidthOnlySelector) Select(cands []Candidate) (int, error) {
	if len(cands) == 0 {
		return 0, ErrNoCandidates
	}
	best := 0
	for i := 1; i < len(cands); i++ {
		if cands[i].Report.BandwidthPercent > cands[best].Report.BandwidthPercent {
			best = i
		}
	}
	return best, nil
}

// SelectionServer is the replica selection server of Fig. 1: it takes the
// replica catalog's location list, asks the information server for the
// three system factors of every candidate, scores them, and picks the best.
type SelectionServer struct {
	catalog  *replica.Catalog
	infoSrv  *info.Server
	weights  Weights
	selector Selector
	// view is the last pinned snapshot view, reused while its snapshot
	// stays current (per-epoch memoization). Written only by PinView on
	// the simulation goroutine.
	view *SnapshotView
}

// NewSelectionServer wires a selection server. selector defaults to the
// cost model with the given weights when nil.
func NewSelectionServer(catalog *replica.Catalog, infoSrv *info.Server, weights Weights, selector Selector) (*SelectionServer, error) {
	if catalog == nil {
		return nil, errors.New("core: selection server needs a catalog")
	}
	if infoSrv == nil {
		return nil, errors.New("core: selection server needs an information server")
	}
	if err := weights.Validate(); err != nil {
		return nil, err
	}
	if selector == nil {
		selector = CostModelSelector{Weights: weights}
	}
	return &SelectionServer{catalog: catalog, infoSrv: infoSrv, weights: weights, selector: selector}, nil
}

// Weights returns the server's scoring weights.
func (s *SelectionServer) Weights() Weights { return s.weights }

// ErrNoUsableReplica is returned when every registered replica lacks
// monitoring data.
var ErrNoUsableReplica = errors.New("core: no usable replica")

// Rank scores every registered replica of the logical file and returns the
// candidates sorted best-first. Replicas without monitoring data are
// skipped; if none remain, ErrNoUsableReplica is returned.
func (s *SelectionServer) Rank(logical string, now time.Duration) ([]Candidate, error) {
	locs, err := s.catalog.Locations(logical)
	if err != nil {
		return nil, err
	}
	cands := make([]Candidate, 0, len(locs))
	for _, loc := range locs {
		rep, err := s.infoSrv.Report(loc.Host, now)
		if err != nil {
			if errors.Is(err, info.ErrNoData) {
				continue
			}
			return nil, err
		}
		cands = append(cands, Candidate{Location: loc, Report: rep, Score: Score(rep, s.weights)})
	}
	if len(cands) == 0 {
		return nil, fmt.Errorf("%w: %q has %d replicas, none monitored", ErrNoUsableReplica, logical, len(locs))
	}
	sort.SliceStable(cands, func(i, j int) bool {
		if cands[i].Score != cands[j].Score {
			return cands[i].Score > cands[j].Score
		}
		return cands[i].Location.String() < cands[j].Location.String()
	})
	return cands, nil
}

// SelectBest returns the selector's choice among the ranked candidates.
func (s *SelectionServer) SelectBest(logical string, now time.Duration) (Candidate, error) {
	cands, err := s.Rank(logical, now)
	if err != nil {
		return Candidate{}, err
	}
	i, err := s.selector.Select(cands)
	if err != nil {
		return Candidate{}, err
	}
	if i < 0 || i >= len(cands) {
		return Candidate{}, fmt.Errorf("core: selector %q returned out-of-range index %d", s.selector.Name(), i)
	}
	return cands[i], nil
}
