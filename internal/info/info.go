// Package info implements the information server of the paper's replica
// selection scenario (Fig. 1): the component that, asked about a candidate
// replica host, returns "the performance of measurements and predictions of
// three system factors" — network bandwidth (from NWS forecasts), CPU load
// (from an MDS query) and I/O state (from sysstat collectors).
//
// Since the snapshot-plane refactor the server is a thin view over
// gridstate: hosts with a sysstat collector (the deployment's monitored
// set) are tracked by a gridstate.Publisher, and Report answers them from
// the current epoch-stamped snapshot, rebuilding it lazily when the
// virtual clock or a substrate revision moved. The original pull-per-query
// path is retained verbatim as the snapshot builder (BuildHostPerf) and as
// ReportLive for hosts outside the tracked set, so the two read paths
// cannot diverge.
package info

import (
	"errors"
	"fmt"
	"sort"
	"strconv"
	"time"

	"github.com/hpclab/datagrid/internal/gridstate"
	"github.com/hpclab/datagrid/internal/mds"
	"github.com/hpclab/datagrid/internal/netsim"
	"github.com/hpclab/datagrid/internal/nws"
	"github.com/hpclab/datagrid/internal/sysstat"
)

// HostReport is the information server's answer about one candidate host,
// seen from the local site. Percentages are in [0, 100].
type HostReport struct {
	// Host is the candidate replica host (node j in the cost model).
	Host string
	// Local is the requesting host (node i).
	Local string
	// BandwidthMbps is the NWS-forecast achievable TCP throughput from
	// Host to Local.
	BandwidthMbps float64
	// TheoreticalMbps is the path's raw bottleneck line rate.
	TheoreticalMbps float64
	// BandwidthPercent is 100 * current/theoretical — the cost model's
	// BW_P(i,j).
	BandwidthPercent float64
	// CPUIdlePercent is the candidate's idle CPU share — CPU_P(j).
	CPUIdlePercent float64
	// IOIdlePercent is the candidate's idle disk share — IO_P(j).
	IOIdlePercent float64
	// LatencyMs is the NWS-forecast round-trip time from Host to Local in
	// milliseconds, 0 when no latency sensor covers the pair. It is the
	// extra system factor of the paper's future work #2, consumed by
	// core.LatencyAwareSelector.
	LatencyMs float64
	// At is the virtual time of the report.
	At time.Duration
}

// ioIdleSource is the slice of sysstat.Collector the server reads. Keeping
// it an interface lets same-package tests substitute failing collectors.
type ioIdleSource interface {
	IOIdlePercent() (float64, error)
}

// hostFilters holds a host's precompiled MDS filters so the hot query path
// does not re-parse the same filter strings on every report.
type hostFilters struct {
	cpu  mds.Filter
	disk mds.Filter
}

// Server aggregates the three monitoring substrates.
type Server struct {
	local   string
	network *netsim.Network
	nwsMem  *nws.Memory
	dir     mds.Searcher
	sys     map[string]ioIdleSource
	filters map[string]hostFilters
	pub     *gridstate.Publisher
	// maxAge, when positive, marks hosts whose last bandwidth measurement
	// is older than this as unmonitored (ErrNoData). Stale series mean
	// the probe path stalled — typically a dead host or link — and the
	// selection server must stop considering such replicas.
	maxAge time.Duration
}

// SetStaleness configures the maximum bandwidth-measurement age before a
// host is reported as unmonitored. Zero disables the check.
func (s *Server) SetStaleness(d time.Duration) error {
	if d < 0 {
		return fmt.Errorf("info: negative staleness %v", d)
	}
	s.maxAge = d
	// The current snapshot was built under the old staleness policy.
	s.pub.Invalidate()
	return nil
}

// NewServer builds an information server for queries issued from the local
// host. dir is the MDS index to query for CPU state (typically the top
// GIIS); sys maps host name to its sysstat collector and may be nil if I/O
// state should come from MDS disk entries instead.
//
// The keys of sys become the snapshot plane's tracked host set: Report
// answers them from the publisher's current snapshot. Hosts outside sys
// are served by the live pull path on every call.
func NewServer(local string, network *netsim.Network, nwsMem *nws.Memory, dir mds.Searcher, sys map[string]*sysstat.Collector) (*Server, error) {
	if local == "" {
		return nil, errors.New("info: empty local host")
	}
	if network == nil {
		return nil, errors.New("info: nil network")
	}
	if nwsMem == nil {
		return nil, errors.New("info: nil NWS memory")
	}
	if dir == nil {
		return nil, errors.New("info: nil MDS directory")
	}
	tracked := make([]string, 0, len(sys))
	isys := make(map[string]ioIdleSource, len(sys))
	for h, c := range sys {
		tracked = append(tracked, h)
		isys[h] = c
	}
	sort.Strings(tracked)
	srv := &Server{
		local:   local,
		network: network,
		nwsMem:  nwsMem,
		dir:     dir,
		sys:     isys,
		filters: make(map[string]hostFilters),
	}
	sources := []gridstate.Source{nwsMem}
	if d, ok := dir.(gridstate.Source); ok {
		sources = append(sources, d)
	}
	for _, h := range tracked {
		sources = append(sources, sys[h])
	}
	pub, err := gridstate.NewPublisher(local, tracked, srv, sources...)
	if err != nil {
		return nil, err
	}
	srv.pub = pub
	return srv, nil
}

// Local returns the host this server reports relative to.
func (s *Server) Local() string { return s.local }

// Publisher exposes the snapshot plane backing this server.
func (s *Server) Publisher() *gridstate.Publisher { return s.pub }

// Snapshot returns a grid-state snapshot valid at now, rebuilding lazily
// if the clock or a substrate revision moved since the last epoch. Must
// run on the simulation goroutine; the returned snapshot is immutable and
// may be read from any goroutine.
func (s *Server) Snapshot(now time.Duration) *gridstate.Snapshot {
	return s.pub.Snapshot(now)
}

// ErrNoData is returned when a substrate has no information about a host.
var ErrNoData = errors.New("info: no monitoring data")

// Report gathers the three system factors for a candidate host at the
// current virtual time. Tracked hosts are answered from the snapshot
// plane; others fall back to the live pull path (ReportLive).
func (s *Server) Report(host string, now time.Duration) (HostReport, error) {
	if host == "" {
		return HostReport{}, errors.New("info: empty host")
	}
	if s.pub.Covers(host) {
		return ReportFrom(s.pub.Snapshot(now), host)
	}
	return s.buildLive(host, now)
}

// ReportLive gathers the three system factors by querying the monitoring
// substrates directly, bypassing the snapshot plane. This is the legacy
// pull-per-query path; Report and the snapshot builder both reduce to it.
func (s *Server) ReportLive(host string, now time.Duration) (HostReport, error) {
	if host == "" {
		return HostReport{}, errors.New("info: empty host")
	}
	return s.buildLive(host, now)
}

// BuildHostPerf implements gridstate.Builder: one tracked host's snapshot
// entry is exactly the live pull path's answer at the build instant.
func (s *Server) BuildHostPerf(host string, now time.Duration) (gridstate.HostPerf, error) {
	r, err := s.buildLive(host, now)
	if err != nil {
		return gridstate.HostPerf{}, err
	}
	return gridstate.HostPerf{
		Host:             r.Host,
		Local:            r.Local,
		BandwidthMbps:    r.BandwidthMbps,
		TheoreticalMbps:  r.TheoreticalMbps,
		BandwidthPercent: r.BandwidthPercent,
		CPUIdlePercent:   r.CPUIdlePercent,
		IOIdlePercent:    r.IOIdlePercent,
		LatencyMs:        r.LatencyMs,
		At:               r.At,
	}, nil
}

// ReportFrom converts a snapshot entry into the server's answer for host.
// It preserves the live path's error semantics exactly: the error stored
// at build time (ErrNoData wrapping included) is returned as-is, and
// hosts the snapshot does not cover yield gridstate.ErrUntracked.
func ReportFrom(snap *gridstate.Snapshot, host string) (HostReport, error) {
	perf, err := snap.Lookup(host)
	if err != nil {
		return HostReport{}, err
	}
	return HostReport{
		Host:             perf.Host,
		Local:            perf.Local,
		BandwidthMbps:    perf.BandwidthMbps,
		TheoreticalMbps:  perf.TheoreticalMbps,
		BandwidthPercent: perf.BandwidthPercent,
		CPUIdlePercent:   perf.CPUIdlePercent,
		IOIdlePercent:    perf.IOIdlePercent,
		LatencyMs:        perf.LatencyMs,
		At:               perf.At,
	}, nil
}

// buildLive is the pull path: it queries NWS, MDS and sysstat for one host
// at one virtual instant. Both Report (for untracked hosts) and the
// snapshot builder go through it.
func (s *Server) buildLive(host string, now time.Duration) (HostReport, error) {
	r := HostReport{Host: host, Local: s.local, At: now}

	if host == s.local {
		// Local access: no network involved; treat bandwidth as ideal.
		r.BandwidthPercent = 100
		r.BandwidthMbps = 0
		r.TheoreticalMbps = 0
	} else {
		theo, err := s.network.BottleneckBps(host, s.local)
		if err != nil {
			return HostReport{}, fmt.Errorf("info: no path %s->%s: %w", host, s.local, err)
		}
		r.TheoreticalMbps = theo / 1e6
		bwKey := nws.SeriesKey{Resource: nws.ResourceBandwidth, Source: host, Target: s.local}
		fc, err := s.nwsMem.Forecast(bwKey)
		if err != nil {
			return HostReport{}, fmt.Errorf("%w: bandwidth %s->%s: %v", ErrNoData, host, s.local, err)
		}
		if s.maxAge > 0 {
			last, err := s.nwsMem.Latest(bwKey)
			if err != nil {
				return HostReport{}, fmt.Errorf("%w: bandwidth %s->%s: %v", ErrNoData, host, s.local, err)
			}
			if age := now - last.At; age > s.maxAge {
				return HostReport{}, fmt.Errorf("%w: bandwidth %s->%s stale by %v", ErrNoData, host, s.local, age)
			}
		}
		r.BandwidthMbps = fc.Value
		r.BandwidthPercent = 100 * fc.Value / r.TheoreticalMbps
		if r.BandwidthPercent > 100 {
			r.BandwidthPercent = 100
		}
		if r.BandwidthPercent < 0 {
			r.BandwidthPercent = 0
		}
		// Latency is best-effort: not every deployment runs latency
		// sensors, and the base cost model does not need it.
		if lfc, err := s.nwsMem.Forecast(nws.SeriesKey{
			Resource: nws.ResourceLatency, Source: host, Target: s.local,
		}); err == nil {
			r.LatencyMs = lfc.Value
		}
	}

	cpu, err := s.cpuIdle(host)
	if err != nil {
		return HostReport{}, err
	}
	r.CPUIdlePercent = cpu

	io, err := s.ioIdle(host)
	if err != nil {
		return HostReport{}, err
	}
	r.IOIdlePercent = io
	return r, nil
}

// filtersFor returns the host's precompiled MDS filters, parsing and
// caching them on first use.
func (s *Server) filtersFor(host string) (hostFilters, error) {
	if f, ok := s.filters[host]; ok {
		return f, nil
	}
	cpu, err := mds.ParseFilter("(&(" + mds.AttrHostName + "=" + host + ")(" + mds.AttrDevice + "=cpu))")
	if err != nil {
		return hostFilters{}, err
	}
	disk, err := mds.ParseFilter("(&(" + mds.AttrHostName + "=" + host + ")(" + mds.AttrDevice + "=disk))")
	if err != nil {
		return hostFilters{}, err
	}
	f := hostFilters{cpu: cpu, disk: disk}
	s.filters[host] = f
	return f, nil
}

func (s *Server) cpuIdle(host string) (float64, error) {
	hf, err := s.filtersFor(host)
	if err != nil {
		return 0, err
	}
	es, err := s.dir.Search(hf.cpu)
	if err != nil {
		return 0, fmt.Errorf("%w: MDS query for %s: %v", ErrNoData, host, err)
	}
	if len(es) == 0 {
		return 0, fmt.Errorf("%w: no MDS cpu entry for %s", ErrNoData, host)
	}
	raw, ok := es[0].Attrs[mds.AttrCPUFreeX100]
	if !ok {
		return 0, fmt.Errorf("%w: MDS entry for %s lacks %s", ErrNoData, host, mds.AttrCPUFreeX100)
	}
	x100, err := strconv.Atoi(raw)
	if err != nil {
		return 0, fmt.Errorf("info: bad %s=%q for %s: %w", mds.AttrCPUFreeX100, raw, host, err)
	}
	return float64(x100) / 100, nil
}

func (s *Server) ioIdle(host string) (float64, error) {
	if col, ok := s.sys[host]; ok {
		v, err := col.IOIdlePercent()
		if err == nil {
			return v, nil
		}
		if !errors.Is(err, sysstat.ErrNoSamples) {
			// A collector that exists but fails for any reason other
			// than "no samples yet" is a real fault; hiding it behind
			// the MDS fallback would mask broken monitoring.
			return 0, fmt.Errorf("info: I/O collector for %s: %w", host, err)
		}
		// No samples yet: fall through to the MDS disk entry.
	}
	hf, err := s.filtersFor(host)
	if err != nil {
		return 0, err
	}
	es, err := s.dir.Search(hf.disk)
	if err != nil || len(es) == 0 {
		return 0, fmt.Errorf("%w: no I/O state for %s", ErrNoData, host)
	}
	raw, ok := es[0].Attrs[mds.AttrIOFreeX100]
	if !ok {
		return 0, fmt.Errorf("%w: MDS entry for %s lacks %s", ErrNoData, host, mds.AttrIOFreeX100)
	}
	x100, err := strconv.Atoi(raw)
	if err != nil {
		return 0, fmt.Errorf("info: bad %s=%q for %s: %w", mds.AttrIOFreeX100, raw, host, err)
	}
	return float64(x100) / 100, nil
}
