// Package info implements the information server of the paper's replica
// selection scenario (Fig. 1): the component that, asked about a candidate
// replica host, returns "the performance of measurements and predictions of
// three system factors" — network bandwidth (from NWS forecasts), CPU load
// (from an MDS query) and I/O state (from sysstat collectors).
package info

import (
	"errors"
	"fmt"
	"strconv"
	"time"

	"github.com/hpclab/datagrid/internal/mds"
	"github.com/hpclab/datagrid/internal/netsim"
	"github.com/hpclab/datagrid/internal/nws"
	"github.com/hpclab/datagrid/internal/sysstat"
)

// HostReport is the information server's answer about one candidate host,
// seen from the local site. Percentages are in [0, 100].
type HostReport struct {
	// Host is the candidate replica host (node j in the cost model).
	Host string
	// Local is the requesting host (node i).
	Local string
	// BandwidthMbps is the NWS-forecast achievable TCP throughput from
	// Host to Local.
	BandwidthMbps float64
	// TheoreticalMbps is the path's raw bottleneck line rate.
	TheoreticalMbps float64
	// BandwidthPercent is 100 * current/theoretical — the cost model's
	// BW_P(i,j).
	BandwidthPercent float64
	// CPUIdlePercent is the candidate's idle CPU share — CPU_P(j).
	CPUIdlePercent float64
	// IOIdlePercent is the candidate's idle disk share — IO_P(j).
	IOIdlePercent float64
	// LatencyMs is the NWS-forecast round-trip time from Host to Local in
	// milliseconds, 0 when no latency sensor covers the pair. It is the
	// extra system factor of the paper's future work #2, consumed by
	// core.LatencyAwareSelector.
	LatencyMs float64
	// At is the virtual time of the report.
	At time.Duration
}

// Server aggregates the three monitoring substrates.
type Server struct {
	local   string
	network *netsim.Network
	nwsMem  *nws.Memory
	dir     mds.Searcher
	sys     map[string]*sysstat.Collector
	// maxAge, when positive, marks hosts whose last bandwidth measurement
	// is older than this as unmonitored (ErrNoData). Stale series mean
	// the probe path stalled — typically a dead host or link — and the
	// selection server must stop considering such replicas.
	maxAge time.Duration
}

// SetStaleness configures the maximum bandwidth-measurement age before a
// host is reported as unmonitored. Zero disables the check.
func (s *Server) SetStaleness(d time.Duration) error {
	if d < 0 {
		return fmt.Errorf("info: negative staleness %v", d)
	}
	s.maxAge = d
	return nil
}

// NewServer builds an information server for queries issued from the local
// host. dir is the MDS index to query for CPU state (typically the top
// GIIS); sys maps host name to its sysstat collector and may be nil if I/O
// state should come from MDS disk entries instead.
func NewServer(local string, network *netsim.Network, nwsMem *nws.Memory, dir mds.Searcher, sys map[string]*sysstat.Collector) (*Server, error) {
	if local == "" {
		return nil, errors.New("info: empty local host")
	}
	if network == nil {
		return nil, errors.New("info: nil network")
	}
	if nwsMem == nil {
		return nil, errors.New("info: nil NWS memory")
	}
	if dir == nil {
		return nil, errors.New("info: nil MDS directory")
	}
	if sys == nil {
		sys = map[string]*sysstat.Collector{}
	}
	return &Server{local: local, network: network, nwsMem: nwsMem, dir: dir, sys: sys}, nil
}

// Local returns the host this server reports relative to.
func (s *Server) Local() string { return s.local }

// ErrNoData is returned when a substrate has no information about a host.
var ErrNoData = errors.New("info: no monitoring data")

// Report gathers the three system factors for a candidate host at the
// current virtual time.
func (s *Server) Report(host string, now time.Duration) (HostReport, error) {
	if host == "" {
		return HostReport{}, errors.New("info: empty host")
	}
	r := HostReport{Host: host, Local: s.local, At: now}

	if host == s.local {
		// Local access: no network involved; treat bandwidth as ideal.
		r.BandwidthPercent = 100
		r.BandwidthMbps = 0
		r.TheoreticalMbps = 0
	} else {
		theo, err := s.network.BottleneckBps(host, s.local)
		if err != nil {
			return HostReport{}, fmt.Errorf("info: no path %s->%s: %w", host, s.local, err)
		}
		r.TheoreticalMbps = theo / 1e6
		bwKey := nws.SeriesKey{Resource: nws.ResourceBandwidth, Source: host, Target: s.local}
		fc, err := s.nwsMem.Forecast(bwKey)
		if err != nil {
			return HostReport{}, fmt.Errorf("%w: bandwidth %s->%s: %v", ErrNoData, host, s.local, err)
		}
		if s.maxAge > 0 {
			last, err := s.nwsMem.Latest(bwKey)
			if err != nil {
				return HostReport{}, fmt.Errorf("%w: bandwidth %s->%s: %v", ErrNoData, host, s.local, err)
			}
			if age := now - last.At; age > s.maxAge {
				return HostReport{}, fmt.Errorf("%w: bandwidth %s->%s stale by %v", ErrNoData, host, s.local, age)
			}
		}
		r.BandwidthMbps = fc.Value
		r.BandwidthPercent = 100 * fc.Value / r.TheoreticalMbps
		if r.BandwidthPercent > 100 {
			r.BandwidthPercent = 100
		}
		if r.BandwidthPercent < 0 {
			r.BandwidthPercent = 0
		}
		// Latency is best-effort: not every deployment runs latency
		// sensors, and the base cost model does not need it.
		if lfc, err := s.nwsMem.Forecast(nws.SeriesKey{
			Resource: nws.ResourceLatency, Source: host, Target: s.local,
		}); err == nil {
			r.LatencyMs = lfc.Value
		}
	}

	cpu, err := s.cpuIdle(host)
	if err != nil {
		return HostReport{}, err
	}
	r.CPUIdlePercent = cpu

	io, err := s.ioIdle(host)
	if err != nil {
		return HostReport{}, err
	}
	r.IOIdlePercent = io
	return r, nil
}

func (s *Server) cpuIdle(host string) (float64, error) {
	f, err := mds.ParseFilter("(&(" + mds.AttrHostName + "=" + host + ")(" + mds.AttrDevice + "=cpu))")
	if err != nil {
		return 0, err
	}
	es, err := s.dir.Search(f)
	if err != nil {
		return 0, fmt.Errorf("%w: MDS query for %s: %v", ErrNoData, host, err)
	}
	if len(es) == 0 {
		return 0, fmt.Errorf("%w: no MDS cpu entry for %s", ErrNoData, host)
	}
	raw, ok := es[0].Attrs[mds.AttrCPUFreeX100]
	if !ok {
		return 0, fmt.Errorf("%w: MDS entry for %s lacks %s", ErrNoData, host, mds.AttrCPUFreeX100)
	}
	x100, err := strconv.Atoi(raw)
	if err != nil {
		return 0, fmt.Errorf("info: bad %s=%q for %s: %w", mds.AttrCPUFreeX100, raw, host, err)
	}
	return float64(x100) / 100, nil
}

func (s *Server) ioIdle(host string) (float64, error) {
	if col, ok := s.sys[host]; ok {
		v, err := col.IOIdlePercent()
		if err == nil {
			return v, nil
		}
		// fall through to MDS if the collector has no samples yet
	}
	f, err := mds.ParseFilter("(&(" + mds.AttrHostName + "=" + host + ")(" + mds.AttrDevice + "=disk))")
	if err != nil {
		return 0, err
	}
	es, err := s.dir.Search(f)
	if err != nil || len(es) == 0 {
		return 0, fmt.Errorf("%w: no I/O state for %s", ErrNoData, host)
	}
	raw, ok := es[0].Attrs[mds.AttrIOFreeX100]
	if !ok {
		return 0, fmt.Errorf("%w: MDS entry for %s lacks %s", ErrNoData, host, mds.AttrIOFreeX100)
	}
	x100, err := strconv.Atoi(raw)
	if err != nil {
		return 0, fmt.Errorf("info: bad %s=%q for %s: %w", mds.AttrIOFreeX100, raw, host, err)
	}
	return float64(x100) / 100, nil
}
