package info

import (
	"errors"
	"testing"
	"time"

	"github.com/hpclab/datagrid/internal/cluster"
	"github.com/hpclab/datagrid/internal/mds"
	"github.com/hpclab/datagrid/internal/netsim"
	"github.com/hpclab/datagrid/internal/nws"
	"github.com/hpclab/datagrid/internal/simulation"
)

// paperSetup deploys monitoring on the paper testbed with alpha1 local.
func paperSetup(t *testing.T) (*simulation.Engine, *cluster.Testbed, *Deployment) {
	t.Helper()
	eng := simulation.NewEngine()
	tb, err := cluster.NewPaperTestbed(eng, 1)
	if err != nil {
		t.Fatal(err)
	}
	dep, err := Deploy(tb, DeploymentConfig{
		Local:   "alpha1",
		Remotes: []string{"alpha4", "hit0", "lz02"},
		Seed:    42,
	})
	if err != nil {
		t.Fatal(err)
	}
	return eng, tb, dep
}

func TestDeployValidation(t *testing.T) {
	eng := simulation.NewEngine()
	tb, err := cluster.NewPaperTestbed(eng, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Deploy(nil, DeploymentConfig{Local: "alpha1"}); err == nil {
		t.Fatal("nil testbed should be rejected")
	}
	if _, err := Deploy(tb, DeploymentConfig{}); err == nil {
		t.Fatal("missing local should be rejected")
	}
	if _, err := Deploy(tb, DeploymentConfig{Local: "ghost"}); err == nil {
		t.Fatal("unknown local should be rejected")
	}
	if _, err := Deploy(tb, DeploymentConfig{Local: "alpha1", Remotes: []string{"ghost"}}); err == nil {
		t.Fatal("unknown remote should be rejected")
	}
	if _, err := Deploy(tb, DeploymentConfig{Local: "alpha1", Remotes: []string{"alpha1"}}); err == nil {
		t.Fatal("local listed as remote should be rejected")
	}
}

func TestReportGathersThreeFactors(t *testing.T) {
	eng, tb, dep := paperSetup(t)
	// Put load on the candidates so the factors are distinguishable.
	hit0, _ := tb.Host("hit0")
	if err := hit0.SetBaseCPULoad(0.6); err != nil {
		t.Fatal(err)
	}
	if err := hit0.SetBaseIOLoad(0.4); err != nil {
		t.Fatal(err)
	}
	// Let sensors take several probes.
	if err := eng.RunUntil(60 * time.Second); err != nil {
		t.Fatal(err)
	}
	r, err := dep.Server.Report("hit0", eng.Now())
	if err != nil {
		t.Fatal(err)
	}
	if r.Host != "hit0" || r.Local != "alpha1" {
		t.Fatalf("report endpoints = %s, %s", r.Host, r.Local)
	}
	if r.TheoreticalMbps != 100 {
		t.Fatalf("theoretical = %v, want 100 (THU-HIT backbone)", r.TheoreticalMbps)
	}
	if r.BandwidthMbps <= 0 || r.BandwidthPercent <= 0 || r.BandwidthPercent > 100 {
		t.Fatalf("bandwidth = %v Mb/s (%v%%)", r.BandwidthMbps, r.BandwidthPercent)
	}
	if r.CPUIdlePercent < 30 || r.CPUIdlePercent > 50 {
		t.Fatalf("cpu idle = %v, want ~40 (load 0.6)", r.CPUIdlePercent)
	}
	if r.IOIdlePercent < 50 || r.IOIdlePercent > 70 {
		t.Fatalf("io idle = %v, want ~60 (load 0.4)", r.IOIdlePercent)
	}
}

func TestReportLocalHost(t *testing.T) {
	eng, _, dep := paperSetup(t)
	if err := eng.RunUntil(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	r, err := dep.Server.Report("alpha1", eng.Now())
	if err != nil {
		t.Fatal(err)
	}
	if r.BandwidthPercent != 100 {
		t.Fatalf("local bandwidth percent = %v, want 100", r.BandwidthPercent)
	}
	if r.CPUIdlePercent <= 0 || r.IOIdlePercent <= 0 {
		t.Fatalf("local report = %+v", r)
	}
}

func TestReportUnmonitoredHost(t *testing.T) {
	eng, _, dep := paperSetup(t)
	if err := eng.RunUntil(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	// lz04 is on the testbed but has no bandwidth sensor to alpha1.
	if _, err := dep.Server.Report("lz04", eng.Now()); !errors.Is(err, ErrNoData) {
		t.Fatalf("unmonitored host err = %v, want ErrNoData", err)
	}
	if _, err := dep.Server.Report("", eng.Now()); err == nil {
		t.Fatal("empty host should error")
	}
}

func TestBandwidthPercentReflectsContention(t *testing.T) {
	eng, tb, dep := paperSetup(t)
	if err := eng.RunUntil(120 * time.Second); err != nil {
		t.Fatal(err)
	}
	quiet, err := dep.Server.Report("lz02", eng.Now())
	if err != nil {
		t.Fatal(err)
	}
	// Saturate the Li-Zen -> THU path with several competing flows.
	for i := 0; i < 6; i++ {
		if _, err := tb.Network().StartFlow("lz03", "alpha2", 1<<33, netsim.FlowOptions{WindowBytes: 1 << 30}, nil); err != nil {
			t.Fatal(err)
		}
	}
	if err := eng.RunUntil(600 * time.Second); err != nil {
		t.Fatal(err)
	}
	busy, err := dep.Server.Report("lz02", eng.Now())
	if err != nil {
		t.Fatal(err)
	}
	if busy.BandwidthPercent >= quiet.BandwidthPercent {
		t.Fatalf("contended bandwidth%% (%v) should drop below quiet (%v)",
			busy.BandwidthPercent, quiet.BandwidthPercent)
	}
}

func TestServerValidation(t *testing.T) {
	eng := simulation.NewEngine()
	net := netsim.New(eng, 1)
	mem := nws.NewMemory(0, nil)
	dir, err := mds.NewGIIS(eng, "o=grid", 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewServer("", net, mem, dir, nil); err == nil {
		t.Fatal("empty local should be rejected")
	}
	if _, err := NewServer("h", nil, mem, dir, nil); err == nil {
		t.Fatal("nil network should be rejected")
	}
	if _, err := NewServer("h", net, nil, dir, nil); err == nil {
		t.Fatal("nil memory should be rejected")
	}
	if _, err := NewServer("h", net, mem, nil, nil); err == nil {
		t.Fatal("nil directory should be rejected")
	}
	s, err := NewServer("h", net, mem, dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	if s.Local() != "h" {
		t.Fatalf("Local = %q", s.Local())
	}
}

func TestDeployDefaultsToAllRemotes(t *testing.T) {
	eng := simulation.NewEngine()
	tb, err := cluster.NewPaperTestbed(eng, 1)
	if err != nil {
		t.Fatal(err)
	}
	dep, err := Deploy(tb, DeploymentConfig{Local: "alpha1"})
	if err != nil {
		t.Fatal(err)
	}
	if got := len(dep.BWSensors); got != 11 {
		t.Fatalf("bandwidth sensors = %d, want 11 (all other hosts)", got)
	}
	if len(dep.Sysstat) != 12 {
		t.Fatalf("sysstat collectors = %d, want 12", len(dep.Sysstat))
	}
	// The NWS nameserver knows every sensor (11 bandwidth + 11 latency +
	// 12 free-memory gauges) plus the memory process itself.
	if got := len(dep.NameServer.List("")); got != 35 {
		t.Fatalf("nameserver registrations = %d, want 35", got)
	}
	if len(dep.Net) != 12 {
		t.Fatalf("net collectors = %d, want 12", len(dep.Net))
	}
}

// TestIOIdleFallsBackToMDS covers hosts without a sysstat collector: the
// information server reads the I/O state from the MDS disk entry instead.
func TestIOIdleFallsBackToMDS(t *testing.T) {
	eng := simulation.NewEngine()
	tb, err := cluster.NewPaperTestbed(eng, 1)
	if err != nil {
		t.Fatal(err)
	}
	dep, err := Deploy(tb, DeploymentConfig{Local: "alpha1", Remotes: []string{"hit0"}, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	h, _ := tb.Host("hit0")
	if err := h.SetBaseIOLoad(0.35); err != nil {
		t.Fatal(err)
	}
	if err := eng.RunUntil(60 * time.Second); err != nil {
		t.Fatal(err)
	}
	// A server over the same substrates but with NO sysstat collectors.
	bare, err := NewServer("alpha1", tb.Network(), dep.NWS, dep.TopGIIS, nil)
	if err != nil {
		t.Fatal(err)
	}
	r, err := bare.Report("hit0", eng.Now())
	if err != nil {
		t.Fatal(err)
	}
	// MDS caches for 5s; the base load was set before warmup ended, so the
	// entry reflects the load process's current walk — just check range.
	if r.IOIdlePercent <= 0 || r.IOIdlePercent > 100 {
		t.Fatalf("fallback IO idle = %v", r.IOIdlePercent)
	}
}

type fixedSearcher struct {
	entries []mds.Entry
}

func (f fixedSearcher) Search(flt mds.Filter) ([]mds.Entry, error) {
	var out []mds.Entry
	for _, e := range f.entries {
		if flt == nil || flt.Matches(e.Attrs) {
			out = append(out, e)
		}
	}
	return out, nil
}
func (f fixedSearcher) Suffix() string { return "fixed" }

// TestReportBadDirectoryData covers the malformed-MDS-entry paths.
func TestReportBadDirectoryData(t *testing.T) {
	eng := simulation.NewEngine()
	tb, err := cluster.NewPaperTestbed(eng, 1)
	if err != nil {
		t.Fatal(err)
	}
	mem := nws.NewMemory(0, nil)
	key := nws.SeriesKey{Resource: nws.ResourceBandwidth, Source: "hit0", Target: "alpha1"}
	if err := mem.Store(key, nws.Measurement{Value: 50}); err != nil {
		t.Fatal(err)
	}
	mkServer := func(entries []mds.Entry) *Server {
		s, err := NewServer("alpha1", tb.Network(), mem, fixedSearcher{entries}, nil)
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	// No cpu entry at all.
	s := mkServer(nil)
	if _, err := s.Report("hit0", 0); !errors.Is(err, ErrNoData) {
		t.Fatalf("missing cpu entry err = %v", err)
	}
	// cpu entry without the idle attribute.
	s = mkServer([]mds.Entry{{DN: "x", Attrs: mds.Attributes{
		mds.AttrHostName: "hit0", mds.AttrDevice: "cpu",
	}}})
	if _, err := s.Report("hit0", 0); !errors.Is(err, ErrNoData) {
		t.Fatalf("missing attr err = %v", err)
	}
	// cpu entry with a non-numeric idle value.
	s = mkServer([]mds.Entry{{DN: "x", Attrs: mds.Attributes{
		mds.AttrHostName: "hit0", mds.AttrDevice: "cpu", mds.AttrCPUFreeX100: "soon",
	}}})
	if _, err := s.Report("hit0", 0); err == nil {
		t.Fatal("bad numeric attr should error")
	}
	// Good cpu entry but no disk entry -> I/O fallback fails.
	s = mkServer([]mds.Entry{{DN: "x", Attrs: mds.Attributes{
		mds.AttrHostName: "hit0", mds.AttrDevice: "cpu", mds.AttrCPUFreeX100: "5000",
	}}})
	if _, err := s.Report("hit0", 0); !errors.Is(err, ErrNoData) {
		t.Fatalf("missing disk entry err = %v", err)
	}
	// Disk entry with a bad I/O value.
	s = mkServer([]mds.Entry{
		{DN: "c", Attrs: mds.Attributes{mds.AttrHostName: "hit0", mds.AttrDevice: "cpu", mds.AttrCPUFreeX100: "5000"}},
		{DN: "d", Attrs: mds.Attributes{mds.AttrHostName: "hit0", mds.AttrDevice: "disk", mds.AttrIOFreeX100: "NaNope"}},
	})
	if _, err := s.Report("hit0", 0); err == nil {
		t.Fatal("bad io attr should error")
	}
	// Fully valid entries succeed.
	s = mkServer([]mds.Entry{
		{DN: "c", Attrs: mds.Attributes{mds.AttrHostName: "hit0", mds.AttrDevice: "cpu", mds.AttrCPUFreeX100: "5000"}},
		{DN: "d", Attrs: mds.Attributes{mds.AttrHostName: "hit0", mds.AttrDevice: "disk", mds.AttrIOFreeX100: "7500"}},
	})
	r, err := s.Report("hit0", 0)
	if err != nil || r.CPUIdlePercent != 50 || r.IOIdlePercent != 75 {
		t.Fatalf("valid report = %+v, %v", r, err)
	}
}

func TestDeploymentMemorySensorAndNIC(t *testing.T) {
	eng, tb, dep := paperSetup(t)
	if err := eng.RunUntil(30 * time.Second); err != nil {
		t.Fatal(err)
	}
	// Free-memory series exists and is bounded by the host's RAM.
	key := nws.SeriesKey{Resource: nws.ResourceMemory, Source: "hit0"}
	last, err := dep.NWS.Latest(key)
	if err != nil {
		t.Fatal(err)
	}
	h, _ := tb.Host("hit0")
	if last.Value <= 0 || last.Value > float64(h.Config().MemMB) {
		t.Fatalf("free memory = %v MB of %d", last.Value, h.Config().MemMB)
	}
	// NIC collectors observe probe traffic into the local host.
	nc := dep.Net["alpha1"]
	if nc == nil {
		t.Fatal("no net collector for local host")
	}
	hist := nc.History()
	saw := false
	for _, r := range hist {
		if r.RxKBps > 0 {
			saw = true
		}
	}
	if !saw {
		t.Fatal("local NIC never saw probe traffic")
	}
}
