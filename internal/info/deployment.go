package info

import (
	"errors"
	"fmt"
	"time"

	"github.com/hpclab/datagrid/internal/cluster"
	"github.com/hpclab/datagrid/internal/mds"
	"github.com/hpclab/datagrid/internal/nws"
	"github.com/hpclab/datagrid/internal/sysstat"
)

// DeploymentConfig tunes the monitoring stack installed on a testbed.
type DeploymentConfig struct {
	// Local is the host user applications run on (node i of the cost
	// model); NWS bandwidth sensors probe remote->Local.
	Local string
	// Remotes are the hosts to monitor as replica candidates. Empty means
	// every other host on the testbed.
	Remotes []string
	// NWSProbePeriod is the bandwidth-probe interval; default 10s.
	NWSProbePeriod time.Duration
	// NWSProbeBytes is the probe size; default 4 MiB — large enough that
	// slow start does not dominate the measurement on fast paths.
	NWSProbeBytes int64
	// NWSProbeWindow is the probe's TCP window; default 512 KiB (probes
	// measure achievable bandwidth, so they use tuned buffers).
	NWSProbeWindow int
	// SysstatPeriod is the sar/iostat sampling interval; default 2s.
	SysstatPeriod time.Duration
	// MDSTTL is the GRIS/GIIS cache TTL; default 5s.
	MDSTTL time.Duration
	// Seed derives all monitor seeds.
	Seed int64
}

func (c *DeploymentConfig) fillDefaults() {
	if c.NWSProbePeriod == 0 {
		c.NWSProbePeriod = 10 * time.Second
	}
	if c.NWSProbeBytes == 0 {
		c.NWSProbeBytes = 4 << 20
	}
	if c.NWSProbeWindow == 0 {
		c.NWSProbeWindow = 512 << 10
	}
	if c.SysstatPeriod == 0 {
		c.SysstatPeriod = 2 * time.Second
	}
	if c.MDSTTL == 0 {
		c.MDSTTL = 5 * time.Second
	}
}

// Deployment is the full monitoring stack of Fig. 1's "information server":
// an NWS installation (nameserver, memory, sensors), an MDS hierarchy
// (GRIS per host, GIIS per site, one top GIIS) and a sysstat collector per
// host, all wired into an info.Server.
type Deployment struct {
	Server     *Server
	NWS        *nws.Memory
	NameServer *nws.NameServer
	TopGIIS    *mds.GIIS
	Sysstat    map[string]*sysstat.Collector
	Net        map[string]*sysstat.NetCollector
	BWSensors  map[string]*nws.Sensor
	// Sensors holds every NWS sensor (bandwidth, latency and gauges) in
	// deployment order, so the whole installation can be paused at once.
	Sensors []*nws.Sensor
	// GRIS and SiteGIIS hold the MDS hierarchy below TopGIIS in
	// deployment order.
	GRIS     []*mds.GRIS
	SiteGIIS []*mds.GIIS
}

// SetMonitorsPaused suspends (or resumes) every monitoring process in the
// deployment — NWS sensors, sysstat and network collectors, and the MDS
// hierarchy. This is the fault plane's "monitor outage": the substrates
// stop reporting, their revision counters freeze, and published grid-state
// snapshots go stale until the outage ends.
func (d *Deployment) SetMonitorsPaused(paused bool) {
	for _, s := range d.Sensors {
		s.SetPaused(paused)
	}
	for _, c := range d.Sysstat {
		c.SetPaused(paused)
	}
	for _, c := range d.Net {
		c.SetPaused(paused)
	}
	for _, g := range d.GRIS {
		g.SetPaused(paused)
	}
	for _, g := range d.SiteGIIS {
		g.SetPaused(paused)
	}
	if d.TopGIIS != nil {
		d.TopGIIS.SetPaused(paused)
	}
}

// Deploy installs the monitoring stack on a testbed and returns the wired
// information server.
func Deploy(tb *cluster.Testbed, cfg DeploymentConfig) (*Deployment, error) {
	if tb == nil {
		return nil, errors.New("info: nil testbed")
	}
	if cfg.Local == "" {
		return nil, errors.New("info: deployment needs a local host")
	}
	if _, err := tb.Host(cfg.Local); err != nil {
		return nil, err
	}
	cfg.fillDefaults()
	engine := tb.Engine()

	remotes := cfg.Remotes
	if len(remotes) == 0 {
		for _, h := range tb.Hosts() {
			if h != cfg.Local {
				remotes = append(remotes, h)
			}
		}
	}
	for _, r := range remotes {
		if r == cfg.Local {
			return nil, fmt.Errorf("info: local host %q listed as remote", r)
		}
		if _, err := tb.Host(r); err != nil {
			return nil, err
		}
	}

	// --- NWS ---
	ns := nws.NewNameServer()
	mem := nws.NewMemory(0, nil)
	if err := ns.Register(nws.Registration{Name: "memory.main", Kind: nws.KindMemory, Host: cfg.Local}); err != nil {
		return nil, err
	}
	seed := cfg.Seed
	bwSensors := make(map[string]*nws.Sensor, len(remotes))
	var sensors []*nws.Sensor
	for _, r := range remotes {
		seed++
		s, err := nws.NewBandwidthSensor(engine, ns, mem, tb.Network(), r, cfg.Local, nws.BandwidthSensorConfig{
			Period:      cfg.NWSProbePeriod,
			ProbeBytes:  cfg.NWSProbeBytes,
			WindowBytes: cfg.NWSProbeWindow,
		})
		if err != nil {
			return nil, fmt.Errorf("info: bandwidth sensor %s->%s: %w", r, cfg.Local, err)
		}
		bwSensors[r] = s
		sensors = append(sensors, s)
		seed++
		lat, err := nws.NewLatencySensor(engine, ns, mem, tb.Network(), r, cfg.Local, cfg.NWSProbePeriod, seed)
		if err != nil {
			return nil, fmt.Errorf("info: latency sensor %s->%s: %w", r, cfg.Local, err)
		}
		sensors = append(sensors, lat)
	}

	// --- MDS hierarchy ---
	top, err := mds.NewGIIS(engine, "Mds-Vo-name=grid,o=grid", cfg.MDSTTL)
	if err != nil {
		return nil, err
	}
	var grisServers []*mds.GRIS
	var siteServers []*mds.GIIS
	for _, site := range tb.Sites() {
		siteGIIS, err := mds.NewGIIS(engine, "Mds-Vo-name="+site+",o=grid", cfg.MDSTTL)
		if err != nil {
			return nil, err
		}
		siteServers = append(siteServers, siteGIIS)
		hosts, err := tb.SiteHosts(site)
		if err != nil {
			return nil, err
		}
		for _, h := range hosts {
			gris, err := mds.NewGRIS(engine, "Mds-Host-hn="+h.Name()+",Mds-Vo-name="+site+",o=grid", cfg.MDSTTL)
			if err != nil {
				return nil, err
			}
			grisServers = append(grisServers, gris)
			hc := h.Config()
			st := mds.HostStatic{
				Site:       site,
				CPUModel:   hc.CPU.Model,
				CPUCount:   hc.CPU.Cores,
				CPUMHz:     hc.CPU.MHz,
				MemMB:      hc.MemMB,
				DiskGB:     hc.Disk.CapacityGB,
				DiskReadB:  hc.Disk.ReadBps,
				DiskWriteB: hc.Disk.WriteBps,
			}
			if err := gris.AddProvider(mds.NewCPUProvider(h, st)); err != nil {
				return nil, err
			}
			if err := gris.AddProvider(mds.NewStorageProvider(h, st)); err != nil {
				return nil, err
			}
			if err := siteGIIS.Register(gris); err != nil {
				return nil, err
			}
		}
		if err := top.Register(siteGIIS); err != nil {
			return nil, err
		}
	}

	// --- sysstat ---
	collectors := make(map[string]*sysstat.Collector, len(remotes)+1)
	netCollectors := make(map[string]*sysstat.NetCollector, len(remotes)+1)
	for _, name := range append(append([]string(nil), remotes...), cfg.Local) {
		h, err := tb.Host(name)
		if err != nil {
			return nil, err
		}
		seed++
		col, err := sysstat.NewCollector(engine, name, h, sysstat.Config{Period: cfg.SysstatPeriod}, seed)
		if err != nil {
			return nil, err
		}
		collectors[name] = col
		name := name
		nc, err := sysstat.NewNetCollector(engine, name, func() (float64, float64, error) {
			return tb.HostNICBps(name)
		}, cfg.SysstatPeriod, 0)
		if err != nil {
			return nil, err
		}
		netCollectors[name] = nc
		// NWS free-memory gauge (the fourth stock NWS sensor): available
		// RAM shrinks as the host gets busier.
		memKey := nws.SeriesKey{Resource: nws.ResourceMemory, Source: name}
		host := h
		gauge, err := nws.NewGaugeSensor(engine, ns, mem, memKey, cfg.SysstatPeriod, func() (float64, error) {
			return float64(host.Config().MemMB) * (0.35 + 0.65*host.CPUIdle()), nil
		})
		if err != nil {
			return nil, err
		}
		sensors = append(sensors, gauge)
	}

	srv, err := NewServer(cfg.Local, tb.Network(), mem, top, collectors)
	if err != nil {
		return nil, err
	}
	// A host whose probes have failed for several periods is treated as
	// unmonitored, so selection routes around dead hosts and links.
	if err := srv.SetStaleness(6 * cfg.NWSProbePeriod); err != nil {
		return nil, err
	}
	return &Deployment{
		Server:     srv,
		NWS:        mem,
		NameServer: ns,
		TopGIIS:    top,
		Sysstat:    collectors,
		Net:        netCollectors,
		BWSensors:  bwSensors,
		Sensors:    sensors,
		GRIS:       grisServers,
		SiteGIIS:   siteServers,
	}, nil
}
