package info

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"github.com/hpclab/datagrid/internal/gridstate"
	"github.com/hpclab/datagrid/internal/mds"
	"github.com/hpclab/datagrid/internal/nws"
	"github.com/hpclab/datagrid/internal/sysstat"
)

// TestReportMatchesReportLive is the snapshot-vs-pull equivalence check:
// for every tracked host and at several instants, the snapshot-backed
// Report must produce byte-for-byte the HostReport the live pull path
// produces, successes and failures alike.
func TestReportMatchesReportLive(t *testing.T) {
	eng, tb, dep := paperSetup(t)
	hit0, _ := tb.Host("hit0")
	if err := hit0.SetBaseCPULoad(0.5); err != nil {
		t.Fatal(err)
	}
	hosts := []string{"alpha1", "alpha4", "hit0", "lz02"}
	for _, at := range []time.Duration{30 * time.Second, 2 * time.Minute, 5 * time.Minute} {
		if err := eng.RunUntil(at); err != nil {
			t.Fatal(err)
		}
		for _, h := range hosts {
			if !dep.Server.Publisher().Covers(h) {
				t.Fatalf("%s should be tracked by the deployment", h)
			}
			snap, snapErr := dep.Server.Report(h, eng.Now())
			live, liveErr := dep.Server.ReportLive(h, eng.Now())
			if (snapErr == nil) != (liveErr == nil) {
				t.Fatalf("%s at %v: snapshot err %v vs live err %v", h, at, snapErr, liveErr)
			}
			if snapErr != nil {
				if snapErr.Error() != liveErr.Error() {
					t.Fatalf("%s at %v: error text diverged:\n%v\n%v", h, at, snapErr, liveErr)
				}
				continue
			}
			if snap != live {
				t.Fatalf("%s at %v: snapshot report %+v != live report %+v", h, at, snap, live)
			}
		}
	}
}

// TestStaleBandwidthYieldsErrNoData: when a candidate's bandwidth series
// goes stale (its probe path died), both read paths must report the host
// unmonitored with ErrNoData.
func TestStaleBandwidthYieldsErrNoData(t *testing.T) {
	eng, _, dep := paperSetup(t)
	if err := eng.RunUntil(2 * time.Minute); err != nil {
		t.Fatal(err)
	}
	// Kill hit0's bandwidth probes and let the series age past the
	// deployment's staleness bound (6 probe periods = 60s by default).
	dep.BWSensors["hit0"].Stop()
	if err := eng.RunUntil(2*time.Minute + 90*time.Second); err != nil {
		t.Fatal(err)
	}
	if _, err := dep.Server.Report("hit0", eng.Now()); !errors.Is(err, ErrNoData) {
		t.Fatalf("snapshot path err = %v, want ErrNoData", err)
	}
	if _, err := dep.Server.ReportLive("hit0", eng.Now()); !errors.Is(err, ErrNoData) {
		t.Fatalf("live path err = %v, want ErrNoData", err)
	}
	// The other candidates keep reporting: staleness is per host.
	if _, err := dep.Server.Report("alpha4", eng.Now()); err != nil {
		t.Fatalf("alpha4 should still report: %v", err)
	}
}

// TestLatencyBestEffort: a pair with bandwidth but no latency sensor must
// report LatencyMs == 0 without error — latency is an optional factor.
func TestLatencyBestEffort(t *testing.T) {
	eng, tb, dep := paperSetup(t)
	if err := eng.RunUntil(30 * time.Second); err != nil {
		t.Fatal(err)
	}
	// A hand-wired server whose NWS memory holds only a bandwidth series
	// for hit0->alpha1 (no latency), with MDS supplying the idle factors.
	mem := nws.NewMemory(0, nil)
	key := nws.SeriesKey{Resource: nws.ResourceBandwidth, Source: "hit0", Target: "alpha1"}
	for i := 0; i < 5; i++ {
		if err := mem.Store(key, nws.Measurement{At: time.Duration(i) * time.Second, Value: 60}); err != nil {
			t.Fatal(err)
		}
	}
	srv, err := NewServer("alpha1", tb.Network(), mem, dep.TopGIIS, nil)
	if err != nil {
		t.Fatal(err)
	}
	r, err := srv.Report("hit0", eng.Now())
	if err != nil {
		t.Fatal(err)
	}
	if r.LatencyMs != 0 {
		t.Fatalf("LatencyMs = %v, want 0 without a latency sensor", r.LatencyMs)
	}
	if r.BandwidthMbps != 60 {
		t.Fatalf("BandwidthMbps = %v", r.BandwidthMbps)
	}
	// The full deployment runs latency sensors, so there the factor is
	// populated.
	full, err := dep.Server.Report("hit0", eng.Now())
	if err != nil {
		t.Fatal(err)
	}
	if full.LatencyMs <= 0 {
		t.Fatalf("deployment LatencyMs = %v, want > 0", full.LatencyMs)
	}
}

// faultyCollector fails with a non-ErrNoSamples error — a broken monitor,
// not an empty one.
type faultyCollector struct{ err error }

func (f faultyCollector) IOIdlePercent() (float64, error) { return 0, f.err }

// noSamplesCollector fails with (wrapped) ErrNoSamples — a monitor that
// simply has not sampled yet.
type noSamplesCollector struct{}

func (noSamplesCollector) IOIdlePercent() (float64, error) {
	return 0, fmt.Errorf("cold start: %w", sysstat.ErrNoSamples)
}

// TestIOIdlePropagatesCollectorFault: a collector failing for any reason
// other than "no samples yet" must surface its error instead of being
// silently papered over by the MDS fallback.
func TestIOIdlePropagatesCollectorFault(t *testing.T) {
	eng, _, dep := paperSetup(t)
	if err := eng.RunUntil(30 * time.Second); err != nil {
		t.Fatal(err)
	}
	boom := errors.New("disk controller on fire")
	dep.Server.sys["hit0"] = faultyCollector{err: boom}
	_, err := dep.Server.ReportLive("hit0", eng.Now())
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want the collector fault propagated", err)
	}
	if errors.Is(err, ErrNoData) {
		t.Fatal("a real collector fault must not masquerade as ErrNoData")
	}
}

// TestIOIdleNoSamplesStillFallsBack: wrapped ErrNoSamples keeps the MDS
// fallback — only genuine faults propagate.
func TestIOIdleNoSamplesStillFallsBack(t *testing.T) {
	eng, _, dep := paperSetup(t)
	if err := eng.RunUntil(30 * time.Second); err != nil {
		t.Fatal(err)
	}
	dep.Server.sys["hit0"] = noSamplesCollector{}
	r, err := dep.Server.ReportLive("hit0", eng.Now())
	if err != nil {
		t.Fatalf("no-samples collector must fall back to MDS: %v", err)
	}
	if r.IOIdlePercent <= 0 {
		t.Fatalf("IOIdlePercent = %v, want MDS-supplied value", r.IOIdlePercent)
	}
}

// TestFilterCacheIsPerHost: repeated reports reuse the precompiled MDS
// filters instead of re-parsing them.
func TestFilterCacheIsPerHost(t *testing.T) {
	eng, _, dep := paperSetup(t)
	if err := eng.RunUntil(30 * time.Second); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, err := dep.Server.ReportLive("hit0", eng.Now()); err != nil {
			t.Fatal(err)
		}
	}
	if n := len(dep.Server.filters); n != 1 {
		t.Fatalf("filter cache has %d entries after repeated hit0 reports, want 1", n)
	}
	if _, err := dep.Server.ReportLive("alpha4", eng.Now()); err != nil {
		t.Fatal(err)
	}
	if n := len(dep.Server.filters); n != 2 {
		t.Fatalf("filter cache has %d entries, want 2", n)
	}
	hf := dep.Server.filters["hit0"]
	if hf.cpu == nil || hf.disk == nil {
		t.Fatal("cached filters must be precompiled")
	}
	// The cached filters match exactly their host's entries.
	es, err := dep.TopGIIS.Search(hf.cpu)
	if err != nil {
		t.Fatal(err)
	}
	if len(es) != 1 || es[0].Attrs[mds.AttrHostName] != "hit0" {
		t.Fatalf("cpu filter matched %v", es)
	}
}

// TestSnapshotEpochAdvancesWithMonitoring: the server's snapshot is reused
// while nothing moved and republishes when the monitors sample.
func TestSnapshotEpochAdvancesWithMonitoring(t *testing.T) {
	eng, _, dep := paperSetup(t)
	if err := eng.RunUntil(30 * time.Second); err != nil {
		t.Fatal(err)
	}
	s1 := dep.Server.Snapshot(eng.Now())
	s2 := dep.Server.Snapshot(eng.Now())
	if s1 != s2 {
		t.Fatal("same instant, no substrate movement: snapshot must be reused")
	}
	if err := eng.RunUntil(40 * time.Second); err != nil {
		t.Fatal(err)
	}
	s3 := dep.Server.Snapshot(eng.Now())
	if s3.Epoch() <= s1.Epoch() {
		t.Fatalf("epoch %d after monitors sampled, want > %d", s3.Epoch(), s1.Epoch())
	}
	// Tracked set is the deployment's monitored hosts.
	for _, h := range []string{"alpha1", "alpha4", "hit0", "lz02"} {
		if !s3.Covers(h) {
			t.Fatalf("snapshot should cover %s", h)
		}
	}
	// An untracked testbed host stays on the live path and keeps its
	// ErrNoData semantics through Report.
	if s3.Covers("lz04") {
		t.Fatal("lz04 is not monitored and must not be tracked")
	}
	if _, err := dep.Server.Report("lz04", eng.Now()); !errors.Is(err, ErrNoData) {
		t.Fatalf("lz04 err = %v, want ErrNoData via live path", err)
	}
}

// TestReportFromUntracked: ReportFrom surfaces gridstate.ErrUntracked for
// hosts outside the snapshot.
func TestReportFromUntracked(t *testing.T) {
	eng, _, dep := paperSetup(t)
	if err := eng.RunUntil(30 * time.Second); err != nil {
		t.Fatal(err)
	}
	snap := dep.Server.Snapshot(eng.Now())
	if _, err := ReportFrom(snap, "lz04"); !errors.Is(err, gridstate.ErrUntracked) {
		t.Fatalf("err = %v, want ErrUntracked", err)
	}
}
