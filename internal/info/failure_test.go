package info

import (
	"errors"
	"testing"
	"time"

	"github.com/hpclab/datagrid/internal/cluster"
	"github.com/hpclab/datagrid/internal/netsim"
)

// TestLinkFailureMakesHostStale drives the full fault path: the Li-Zen
// uplink dies, NWS probes stall and get abandoned, the bandwidth series
// goes stale, and the information server starts reporting lz02 as
// unmonitored — which the selection layer interprets as "do not use".
func TestLinkFailureMakesHostStale(t *testing.T) {
	eng, tb, dep := paperSetup(t)
	if err := eng.RunUntil(2 * time.Minute); err != nil {
		t.Fatal(err)
	}
	// Healthy first.
	if _, err := dep.Server.Report("lz02", eng.Now()); err != nil {
		t.Fatalf("healthy report failed: %v", err)
	}
	// Kill the Li-Zen -> THU uplink.
	lz := cluster.SwitchNode(cluster.SiteLiZen)
	thu := cluster.SwitchNode(cluster.SiteTHU)
	if err := tb.Network().SetLinkDown(lz, thu, true); err != nil {
		t.Fatal(err)
	}
	// Staleness threshold in paperSetup is 6 x 10s probes = 1 minute;
	// give it two.
	if err := eng.RunUntil(4 * time.Minute); err != nil {
		t.Fatal(err)
	}
	if _, err := dep.Server.Report("lz02", eng.Now()); !errors.Is(err, ErrNoData) {
		t.Fatalf("dead host report err = %v, want ErrNoData", err)
	}
	// Other candidates stay reportable.
	if _, err := dep.Server.Report("hit0", eng.Now()); err != nil {
		t.Fatalf("unrelated host affected: %v", err)
	}
	// Restore the link: probes resume and the host becomes usable again.
	if err := tb.Network().SetLinkDown(lz, thu, false); err != nil {
		t.Fatal(err)
	}
	if err := eng.RunUntil(6 * time.Minute); err != nil {
		t.Fatal(err)
	}
	if _, err := dep.Server.Report("lz02", eng.Now()); err != nil {
		t.Fatalf("recovered host still unmonitored: %v", err)
	}
}

func TestSetStalenessValidation(t *testing.T) {
	_, _, dep := paperSetup(t)
	if err := dep.Server.SetStaleness(-time.Second); err == nil {
		t.Fatal("negative staleness should be rejected")
	}
	if err := dep.Server.SetStaleness(0); err != nil {
		t.Fatal(err)
	}
}

func TestLinkDownStateAccessors(t *testing.T) {
	eng, tb, _ := paperSetup(t)
	_ = eng
	lz := cluster.SwitchNode(cluster.SiteLiZen)
	thu := cluster.SwitchNode(cluster.SiteTHU)
	l, err := tb.Network().GetLink(lz, thu)
	if err != nil {
		t.Fatal(err)
	}
	if l.Down() {
		t.Fatal("link should start up")
	}
	if err := tb.Network().SetLinkDown(lz, thu, true); err != nil {
		t.Fatal(err)
	}
	if !l.Down() || l.EffectiveCapacity() != 0 {
		t.Fatalf("down link: down=%v cap=%v", l.Down(), l.EffectiveCapacity())
	}
	avail, err := tb.Network().AvailableBps("lz02", "alpha1")
	if err != nil || avail != 0 {
		t.Fatalf("avail over dead link = %v, %v", avail, err)
	}
	if err := tb.Network().SetLinkDown("ghost", thu, true); err == nil {
		t.Fatal("unknown link should error")
	}
}

// TestFlowStallsOnDeadLink checks the netsim semantics: a flow crossing a
// failed link gets zero rate and resumes when the link returns.
func TestFlowStallsOnDeadLink(t *testing.T) {
	eng, tb, _ := paperSetup(t)
	lz := cluster.SwitchNode(cluster.SiteLiZen)
	thu := cluster.SwitchNode(cluster.SiteTHU)
	done := false
	f, err := tb.Network().StartFlow("lz02", "alpha1", 10_000_000, netsim.FlowOptions{WindowBytes: 1 << 20}, func(*netsim.Flow) { done = true })
	if err != nil {
		t.Fatal(err)
	}
	if err := tb.Network().SetLinkDown(lz, thu, true); err != nil {
		t.Fatal(err)
	}
	if f.RateBps() != 0 {
		t.Fatalf("stalled flow rate = %v", f.RateBps())
	}
	if err := eng.RunUntil(eng.Now() + 10*time.Minute); err != nil {
		t.Fatal(err)
	}
	if done {
		t.Fatal("flow must not complete across a dead link")
	}
	if err := tb.Network().SetLinkDown(lz, thu, false); err != nil {
		t.Fatal(err)
	}
	if err := eng.RunUntil(eng.Now() + 30*time.Minute); err != nil {
		t.Fatal(err)
	}
	if !done {
		t.Fatal("flow should complete after the link recovers")
	}
}
