// Package gsi provides a simplified Grid Security Infrastructure: mutual
// authentication between grid processes before any protocol traffic, the
// role GSI plays at the connection layer of every Globus service (paper
// §2.1).
//
// Substitution note (DESIGN.md): real GSI uses X.509 proxy certificates.
// Reimplementing PKI is out of scope, so this package models a virtual
// organization's CA as a shared HMAC issuer: the CA derives a per-subject
// secret, and a three-way nonce exchange proves possession of that secret
// in both directions. The wire shape (extra round trips before the FTP
// banner is usable) is what the performance experiments care about, and
// that is preserved.
package gsi

import (
	"crypto/hmac"
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"strings"
)

// CA is a virtual organization's certificate authority.
type CA struct {
	key []byte
}

// NewCA creates a CA from a secret key. The key must be non-empty.
func NewCA(key []byte) (*CA, error) {
	if len(key) == 0 {
		return nil, errors.New("gsi: empty CA key")
	}
	cp := append([]byte(nil), key...)
	return &CA{key: cp}, nil
}

// Issue creates a credential for a subject (e.g. "/O=Grid/CN=alpha1").
func (ca *CA) Issue(subject string) (Credential, error) {
	if subject == "" {
		return Credential{}, errors.New("gsi: empty subject")
	}
	if strings.ContainsAny(subject, " \n\r") {
		return Credential{}, fmt.Errorf("gsi: subject %q contains whitespace", subject)
	}
	return Credential{Subject: subject, secret: ca.subjectSecret(subject)}, nil
}

func (ca *CA) subjectSecret(subject string) []byte {
	m := hmac.New(sha256.New, ca.key)
	m.Write([]byte("subject-key:" + subject))
	return m.Sum(nil)
}

// Credential identifies one grid process.
type Credential struct {
	// Subject is the distinguished name.
	Subject string
	secret  []byte
}

// Valid reports whether the credential was issued by a CA.
func (c Credential) Valid() bool { return c.Subject != "" && len(c.secret) > 0 }

// Authenticator performs the handshake for one process. The process trusts
// a single CA (its virtual organization).
type Authenticator struct {
	ca   *CA
	cred Credential
	rng  *rand.Rand
}

// NewAuthenticator wires a process's credential and trusted CA. The seeded
// rng keeps nonce generation deterministic inside simulations; use any
// seed in production paths.
func NewAuthenticator(ca *CA, cred Credential, seed int64) (*Authenticator, error) {
	if ca == nil {
		return nil, errors.New("gsi: nil CA")
	}
	if !cred.Valid() {
		return nil, errors.New("gsi: invalid credential")
	}
	return &Authenticator{ca: ca, cred: cred, rng: rand.New(rand.NewSource(seed))}, nil
}

// ErrAuthFailed is returned when the peer cannot prove its identity.
var ErrAuthFailed = errors.New("gsi: authentication failed")

const protoTag = "GSI/1"

func (a *Authenticator) nonce() string {
	b := make([]byte, 16)
	a.rng.Read(b)
	return hex.EncodeToString(b)
}

func proof(secret []byte, nonceC, nonceS, role string) string {
	m := hmac.New(sha256.New, secret)
	m.Write([]byte(nonceC + "|" + nonceS + "|" + role))
	return hex.EncodeToString(m.Sum(nil))
}

// Client runs the initiator side of the handshake over rw and returns the
// authenticated server subject.
//
// The handshake reads rw one byte at a time and never reads past the final
// handshake line, so it can run in-band on a control channel whose later
// bytes belong to another protocol (e.g. the FTP reply stream).
func (a *Authenticator) Client(rw io.ReadWriter) (string, error) {
	nonceC := a.nonce()
	if _, err := fmt.Fprintf(rw, "%s AUTH %s %s\n", protoTag, a.cred.Subject, nonceC); err != nil {
		return "", fmt.Errorf("gsi: sending auth: %w", err)
	}
	line, err := readLine(rw)
	if err != nil {
		return "", err
	}
	parts := strings.Fields(line)
	if len(parts) != 5 || parts[0] != protoTag || parts[1] != "AUTH" {
		return "", fmt.Errorf("%w: malformed server hello %q", ErrAuthFailed, line)
	}
	serverSubject, nonceS, serverProof := parts[2], parts[3], parts[4]
	want := proof(a.ca.subjectSecret(serverSubject), nonceC, nonceS, "server")
	if !hmac.Equal([]byte(want), []byte(serverProof)) {
		return "", fmt.Errorf("%w: server %q proof mismatch", ErrAuthFailed, serverSubject)
	}
	if _, err := fmt.Fprintf(rw, "%s PROOF %s\n", protoTag, proof(a.cred.secret, nonceC, nonceS, "client")); err != nil {
		return "", fmt.Errorf("gsi: sending proof: %w", err)
	}
	line, err = readLine(rw)
	if err != nil {
		return "", err
	}
	if line != protoTag+" OK" {
		return "", fmt.Errorf("%w: server rejected: %q", ErrAuthFailed, line)
	}
	return serverSubject, nil
}

// Server runs the responder side of the handshake over rw and returns the
// authenticated client subject.
func (a *Authenticator) Server(rw io.ReadWriter) (string, error) {
	line, err := readLine(rw)
	if err != nil {
		return "", err
	}
	parts := strings.Fields(line)
	if len(parts) != 4 || parts[0] != protoTag || parts[1] != "AUTH" {
		return "", fmt.Errorf("%w: malformed client hello %q", ErrAuthFailed, line)
	}
	clientSubject, nonceC := parts[2], parts[3]
	nonceS := a.nonce()
	if _, err := fmt.Fprintf(rw, "%s AUTH %s %s %s\n", protoTag, a.cred.Subject, nonceS,
		proof(a.cred.secret, nonceC, nonceS, "server")); err != nil {
		return "", fmt.Errorf("gsi: sending server hello: %w", err)
	}
	line, err = readLine(rw)
	if err != nil {
		return "", err
	}
	parts = strings.Fields(line)
	if len(parts) != 3 || parts[0] != protoTag || parts[1] != "PROOF" {
		fmt.Fprintf(rw, "%s FAIL malformed-proof\n", protoTag)
		return "", fmt.Errorf("%w: malformed client proof %q", ErrAuthFailed, line)
	}
	want := proof(a.ca.subjectSecret(clientSubject), nonceC, nonceS, "client")
	if !hmac.Equal([]byte(want), []byte(parts[2])) {
		fmt.Fprintf(rw, "%s FAIL bad-proof\n", protoTag)
		return "", fmt.Errorf("%w: client %q proof mismatch", ErrAuthFailed, clientSubject)
	}
	if _, err := fmt.Fprintf(rw, "%s OK\n", protoTag); err != nil {
		return "", fmt.Errorf("gsi: sending ok: %w", err)
	}
	return clientSubject, nil
}

// readLine reads up to and including one '\n' without any read-ahead, so
// bytes after the handshake stay in the underlying stream.
func readLine(r io.Reader) (string, error) {
	var b strings.Builder
	buf := make([]byte, 1)
	for {
		if _, err := io.ReadFull(r, buf); err != nil {
			return "", fmt.Errorf("gsi: reading handshake: %w", err)
		}
		if buf[0] == '\n' {
			return strings.TrimRight(b.String(), "\r"), nil
		}
		b.WriteByte(buf[0])
		if b.Len() > 4096 {
			return "", errors.New("gsi: handshake line too long")
		}
	}
}

// HandshakeRoundTrips is the number of control-channel round trips the GSI
// exchange costs before the application protocol may proceed. The
// simulated transfer model charges this latency for GridFTP sessions.
const HandshakeRoundTrips = 2
