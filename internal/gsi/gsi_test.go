package gsi

import (
	"errors"
	"net"
	"testing"
)

func newPair(t *testing.T) (*Authenticator, *Authenticator) {
	t.Helper()
	ca, err := NewCA([]byte("vo-secret"))
	if err != nil {
		t.Fatal(err)
	}
	clientCred, err := ca.Issue("/O=Grid/CN=alpha1")
	if err != nil {
		t.Fatal(err)
	}
	serverCred, err := ca.Issue("/O=Grid/CN=gridftpd.hit0")
	if err != nil {
		t.Fatal(err)
	}
	c, err := NewAuthenticator(ca, clientCred, 1)
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewAuthenticator(ca, serverCred, 2)
	if err != nil {
		t.Fatal(err)
	}
	return c, s
}

// handshake runs both sides over a pipe and returns what each learned.
func handshake(t *testing.T, c, s *Authenticator) (clientSaw, serverSaw string, clientErr, serverErr error) {
	t.Helper()
	cc, sc := net.Pipe()
	done := make(chan struct{})
	go func() {
		serverSaw, serverErr = s.Server(sc)
		sc.Close()
		close(done)
	}()
	clientSaw, clientErr = c.Client(cc)
	// Closing the client end unblocks a server still waiting for a proof
	// the client refused to send (e.g. wrong-CA rejection).
	cc.Close()
	<-done
	return
}

func TestMutualAuthentication(t *testing.T) {
	c, s := newPair(t)
	clientSaw, serverSaw, cerr, serr := handshake(t, c, s)
	if cerr != nil || serr != nil {
		t.Fatalf("handshake errs: client=%v server=%v", cerr, serr)
	}
	if clientSaw != "/O=Grid/CN=gridftpd.hit0" {
		t.Fatalf("client saw %q", clientSaw)
	}
	if serverSaw != "/O=Grid/CN=alpha1" {
		t.Fatalf("server saw %q", serverSaw)
	}
}

func TestWrongCARejected(t *testing.T) {
	c, _ := newPair(t)
	otherCA, err := NewCA([]byte("rogue"))
	if err != nil {
		t.Fatal(err)
	}
	rogueCred, err := otherCA.Issue("/O=Evil/CN=mallory")
	if err != nil {
		t.Fatal(err)
	}
	rogue, err := NewAuthenticator(otherCA, rogueCred, 3)
	if err != nil {
		t.Fatal(err)
	}
	_, _, cerr, serr := handshake(t, c, rogue)
	if cerr == nil {
		t.Fatal("client must reject a server from another CA")
	}
	if !errors.Is(cerr, ErrAuthFailed) {
		t.Fatalf("client err = %v, want ErrAuthFailed", cerr)
	}
	_ = serr // server side may fail or not depending on timing of pipe close
}

func TestImpersonationRejected(t *testing.T) {
	ca, _ := NewCA([]byte("vo-secret"))
	// Mallory holds a valid credential but claims a different subject by
	// reusing alice's name with her own secret.
	malloryCred, _ := ca.Issue("/CN=mallory")
	forged := Credential{Subject: "/CN=alice", secret: malloryCred.secret}
	forger, err := NewAuthenticator(ca, forged, 4)
	if err != nil {
		t.Fatal(err)
	}
	_, s := newPair(t)
	_, _, _, serr := handshake(t, forger, s)
	if !errors.Is(serr, ErrAuthFailed) {
		t.Fatalf("server err = %v, want ErrAuthFailed", serr)
	}
}

func TestValidation(t *testing.T) {
	if _, err := NewCA(nil); err == nil {
		t.Fatal("empty CA key should be rejected")
	}
	ca, _ := NewCA([]byte("k"))
	if _, err := ca.Issue(""); err == nil {
		t.Fatal("empty subject should be rejected")
	}
	if _, err := ca.Issue("has space"); err == nil {
		t.Fatal("whitespace subject should be rejected")
	}
	cred, _ := ca.Issue("/CN=x")
	if _, err := NewAuthenticator(nil, cred, 1); err == nil {
		t.Fatal("nil CA should be rejected")
	}
	if _, err := NewAuthenticator(ca, Credential{}, 1); err == nil {
		t.Fatal("invalid credential should be rejected")
	}
	if (Credential{}).Valid() {
		t.Fatal("zero credential must not be valid")
	}
}

func TestDistinctSubjectsDistinctSecrets(t *testing.T) {
	ca, _ := NewCA([]byte("k"))
	a, _ := ca.Issue("/CN=a")
	b, _ := ca.Issue("/CN=b")
	if string(a.secret) == string(b.secret) {
		t.Fatal("different subjects must derive different secrets")
	}
	a2, _ := ca.Issue("/CN=a")
	if string(a.secret) != string(a2.secret) {
		t.Fatal("same subject must derive the same secret")
	}
}
