package faults

import (
	"reflect"
	"testing"
	"time"

	"github.com/hpclab/datagrid/internal/cluster"
	"github.com/hpclab/datagrid/internal/netsim"
	"github.com/hpclab/datagrid/internal/simulation"
)

func newBed(t *testing.T) (*simulation.Engine, *cluster.Testbed) {
	t.Helper()
	eng := simulation.NewEngine()
	tb, err := cluster.NewPaperTestbed(eng, 1)
	if err != nil {
		t.Fatal(err)
	}
	return eng, tb
}

func TestGeneratePlanDeterministic(t *testing.T) {
	cfg := Config{
		Seed:           7,
		Horizon:        10 * time.Minute,
		MeanDuration:   30 * time.Second,
		LinkFlaps:      3,
		HostCrashes:    2,
		DiskDegrades:   2,
		MonitorOutages: 1,
		Hosts:          []string{"hit0", "lz02", "alpha4"},
		Links:          [][2]string{{"a", "b"}, {"b", "c"}},
	}
	p1, err := GeneratePlan(cfg)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := GeneratePlan(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(p1, p2) {
		t.Fatal("same config must yield the same plan")
	}
	if got := len(p1.Events); got != 8 {
		t.Fatalf("events = %d, want 8", got)
	}
	for i := 1; i < len(p1.Events); i++ {
		if p1.Events[i].At < p1.Events[i-1].At {
			t.Fatalf("plan not sorted: %v", p1.Events)
		}
	}
	cfg.Seed = 8
	p3, err := GeneratePlan(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(p1, p3) {
		t.Fatal("different seeds should yield different plans")
	}
}

func TestGeneratePlanValidation(t *testing.T) {
	if _, err := GeneratePlan(Config{}); err == nil {
		t.Fatal("zero horizon should be rejected")
	}
	if _, err := GeneratePlan(Config{Horizon: time.Minute, HostCrashes: 1}); err == nil {
		t.Fatal("crashes without hosts should be rejected")
	}
	if _, err := GeneratePlan(Config{Horizon: time.Minute, LinkFlaps: 1}); err == nil {
		t.Fatal("flaps without links should be rejected")
	}
}

func TestHostCrashAndReboot(t *testing.T) {
	eng, tb := newBed(t)
	in, err := NewInjector(tb, nil)
	if err != nil {
		t.Fatal(err)
	}
	plan := &Plan{Events: []Event{
		{Kind: HostCrash, Host: "hit0", At: 10 * time.Second, Duration: 20 * time.Second},
	}}
	if err := in.Install(plan); err != nil {
		t.Fatal(err)
	}
	if in.Installed() != 1 {
		t.Fatalf("installed = %d", in.Installed())
	}
	probe := func(at time.Duration, wantDown bool) {
		eng.Schedule(at, func(time.Duration) {
			down, err := tb.HostDown("hit0")
			if err != nil {
				t.Errorf("at %v: %v", at, err)
			}
			if down != wantDown {
				t.Errorf("at %v: down = %v, want %v", at, down, wantDown)
			}
		})
	}
	probe(5*time.Second, false)
	probe(15*time.Second, true)
	probe(35*time.Second, false)
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestOverlappingCrashesNest(t *testing.T) {
	eng, tb := newBed(t)
	in, _ := NewInjector(tb, nil)
	plan := &Plan{Events: []Event{
		{Kind: HostCrash, Host: "hit0", At: 10 * time.Second, Duration: 20 * time.Second},
		{Kind: HostCrash, Host: "hit0", At: 20 * time.Second, Duration: 30 * time.Second},
	}}
	if err := in.Install(plan); err != nil {
		t.Fatal(err)
	}
	probe := func(at time.Duration, wantDown bool) {
		eng.Schedule(at, func(time.Duration) {
			down, _ := tb.HostDown("hit0")
			if down != wantDown {
				t.Errorf("at %v: down = %v, want %v", at, down, wantDown)
			}
		})
	}
	// The first episode's revert at 30s must not revive the host while
	// the second still covers it.
	probe(35*time.Second, true)
	probe(55*time.Second, false)
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestDiskDegradeLoadsAndReverts(t *testing.T) {
	eng, tb := newBed(t)
	in, _ := NewInjector(tb, nil)
	h, err := tb.Host("hit0")
	if err != nil {
		t.Fatal(err)
	}
	base := h.IOLoad()
	plan := &Plan{Events: []Event{
		{Kind: DiskDegrade, Host: "hit0", At: 10 * time.Second, Duration: 20 * time.Second, Severity: 0.7},
	}}
	if err := in.Install(plan); err != nil {
		t.Fatal(err)
	}
	eng.Schedule(15*time.Second, func(time.Duration) {
		if got := h.IOLoad(); got < base+0.69 {
			t.Errorf("during episode: IOLoad = %v, want >= %v", got, base+0.7)
		}
	})
	eng.Schedule(35*time.Second, func(time.Duration) {
		if got := h.IOLoad(); got != base {
			t.Errorf("after episode: IOLoad = %v, want base %v", got, base)
		}
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
}

type fakeGate struct{ calls []bool }

func (g *fakeGate) SetMonitorsPaused(p bool) { g.calls = append(g.calls, p) }

func TestMonitorOutagesCoalesce(t *testing.T) {
	eng, tb := newBed(t)
	gate := &fakeGate{}
	in, _ := NewInjector(tb, gate)
	plan := &Plan{Events: []Event{
		{Kind: MonitorOutage, At: 10 * time.Second, Duration: 20 * time.Second},
		{Kind: MonitorOutage, At: 20 * time.Second, Duration: 20 * time.Second},
	}}
	if err := in.Install(plan); err != nil {
		t.Fatal(err)
	}
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	// Two overlapping outages pause once and resume once, at the outer
	// edges of the union.
	if !reflect.DeepEqual(gate.calls, []bool{true, false}) {
		t.Fatalf("gate calls = %v", gate.calls)
	}
}

func TestInstallValidatesTargets(t *testing.T) {
	_, tb := newBed(t)
	in, _ := NewInjector(tb, nil)
	bad := []Plan{
		{Events: []Event{{Kind: HostCrash, Host: "ghost", At: 1, Duration: 1}}},
		{Events: []Event{{Kind: LinkFlap, From: "nope", To: "hit0", At: 1, Duration: 1}}},
		{Events: []Event{{Kind: HostCrash, Host: "hit0", At: 1, Duration: 0}}},
		{Events: []Event{{Kind: DiskDegrade, Host: "hit0", At: 1, Duration: 1, Severity: 2}}},
		{Events: []Event{{Kind: MonitorOutage, At: 1, Duration: 1}}}, // nil gate
	}
	for i, p := range bad {
		p := p
		if err := in.Install(&p); err == nil {
			t.Errorf("plan %d should be rejected", i)
		}
	}
	if in.Installed() != 0 {
		t.Fatalf("rejected plans must schedule nothing, installed = %d", in.Installed())
	}
	if _, err := NewInjector(nil, nil); err == nil {
		t.Fatal("nil testbed should be rejected")
	}
}

func TestLinkFlapKillsFailFastTransfers(t *testing.T) {
	// End-to-end through netsim: a flap on hit0's LAN uplink kills a
	// fail-fast flow crossing it, and a flow started after the revert
	// completes normally.
	eng, tb := newBed(t)
	in, _ := NewInjector(tb, nil)
	sw := cluster.SwitchNode(cluster.SiteHIT)
	plan := &Plan{Events: []Event{
		{Kind: LinkFlap, From: "hit0", To: sw, At: 5 * time.Second, Duration: 10 * time.Second},
	}}
	if err := in.Install(plan); err != nil {
		t.Fatal(err)
	}
	net := tb.Network()
	var firstState, secondState netsim.FlowState
	if _, err := net.StartFlow("hit0", "alpha1", 1<<30, netsim.FlowOptions{FailOnDown: true},
		func(f *netsim.Flow) { firstState = f.State() }); err != nil {
		t.Fatal(err)
	}
	eng.Schedule(30*time.Second, func(time.Duration) {
		if _, err := net.StartFlow("hit0", "alpha1", 1<<20, netsim.FlowOptions{FailOnDown: true},
			func(f *netsim.Flow) { secondState = f.State() }); err != nil {
			t.Errorf("post-revert flow: %v", err)
		}
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if firstState != netsim.FlowFailed {
		t.Fatalf("flow under flap = %v, want failed", firstState)
	}
	if secondState != netsim.FlowDone {
		t.Fatalf("post-revert flow = %v, want done", secondState)
	}
}
