// Package faults is the deterministic fault-injection plane for the
// simulated data grid. A Plan is a schedule of episodes — WAN link flaps,
// host crashes and reboots, disk-degradation windows, monitoring outages
// — either written out by hand or drawn from a seeded generator. An
// Injector installs the plan onto a testbed: every apply and revert is an
// ordinary engine event, so the same plan against the same seed replays
// the same grid history bit for bit.
//
// The plane only moves state the substrate already models: link flaps
// and crashes go through netsim's Up/Down machinery (stalling legacy
// flows and killing fail-fast ones), disk degradation rides cluster job
// load, and monitor outages pause the NWS/MDS/sysstat reporting chain so
// grid-state snapshots go observably stale. Nothing here runs unless a
// plan is installed — the default simulation is byte-identical with the
// package unused.
package faults

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"time"

	"github.com/hpclab/datagrid/internal/cluster"
)

// Kind classifies one fault episode.
type Kind int

const (
	// LinkFlap downs both directions of a WAN link for the duration.
	LinkFlap Kind = iota
	// HostCrash takes a host off the network (its LAN uplink dies both
	// ways), then reboots it.
	HostCrash
	// DiskDegrade loads a host's IO subsystem for the duration — a
	// failing disk or a runaway local job slowing reads and writes.
	DiskDegrade
	// MonitorOutage pauses the monitoring substrate (NWS sensors,
	// sysstat collectors, MDS caches) so reported state goes stale.
	MonitorOutage
)

func (k Kind) String() string {
	switch k {
	case LinkFlap:
		return "link-flap"
	case HostCrash:
		return "host-crash"
	case DiskDegrade:
		return "disk-degrade"
	case MonitorOutage:
		return "monitor-outage"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Event is one scheduled episode: the fault applies At and reverts at
// At+Duration.
type Event struct {
	// Kind picks the fault machinery.
	Kind Kind
	// Host names the target of HostCrash and DiskDegrade episodes.
	Host string
	// From and To name the directed endpoints of a LinkFlap (both
	// directions go down).
	From, To string
	// At is the virtual apply time.
	At time.Duration
	// Duration is the episode length; the revert fires at At+Duration.
	Duration time.Duration
	// Severity is the DiskDegrade IO load fraction in [0,1].
	Severity float64
}

func (e Event) String() string {
	target := e.Host
	if e.Kind == LinkFlap {
		target = e.From + "<->" + e.To
	}
	return fmt.Sprintf("%v %s @%v +%v", e.Kind, target, e.At, e.Duration)
}

// Plan is a fault schedule, sorted by apply time.
type Plan struct {
	Events []Event
}

// sortEvents orders a schedule deterministically: by time, then kind,
// then target — ties must not depend on generation order.
func sortEvents(evs []Event) {
	sort.SliceStable(evs, func(i, j int) bool {
		a, b := evs[i], evs[j]
		if a.At != b.At {
			return a.At < b.At
		}
		if a.Kind != b.Kind {
			return a.Kind < b.Kind
		}
		if a.Host != b.Host {
			return a.Host < b.Host
		}
		if a.From != b.From {
			return a.From < b.From
		}
		return a.To < b.To
	})
}

// Config parameterizes stochastic plan generation. Episode counts are
// exact, not expectations: intensity sweeps stay monotone.
type Config struct {
	// Seed drives every random draw.
	Seed int64
	// Horizon is the window fault apply times are drawn from.
	Horizon time.Duration
	// MeanDuration scales episode lengths; each episode lasts between
	// 50% and 150% of it.
	MeanDuration time.Duration
	// LinkFlaps, HostCrashes, DiskDegrades and MonitorOutages are the
	// episode counts per category.
	LinkFlaps      int
	HostCrashes    int
	DiskDegrades   int
	MonitorOutages int
	// Hosts are the HostCrash/DiskDegrade victims, drawn uniformly.
	Hosts []string
	// Links are the LinkFlap victims, drawn uniformly.
	Links [][2]string
}

// GeneratePlan draws a deterministic fault schedule from the seeded
// generator: the same Config always yields the same Plan.
func GeneratePlan(cfg Config) (*Plan, error) {
	if cfg.Horizon <= 0 {
		return nil, errors.New("faults: horizon must be positive")
	}
	if cfg.MeanDuration <= 0 {
		cfg.MeanDuration = cfg.Horizon / 10
	}
	if (cfg.HostCrashes > 0 || cfg.DiskDegrades > 0) && len(cfg.Hosts) == 0 {
		return nil, errors.New("faults: host episodes need candidate hosts")
	}
	if cfg.LinkFlaps > 0 && len(cfg.Links) == 0 {
		return nil, errors.New("faults: link flaps need candidate links")
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	draw := func() (at, dur time.Duration) {
		at = time.Duration(rng.Float64() * float64(cfg.Horizon))
		dur = time.Duration((0.5 + rng.Float64()) * float64(cfg.MeanDuration))
		return at, dur
	}
	var evs []Event
	for i := 0; i < cfg.LinkFlaps; i++ {
		at, dur := draw()
		l := cfg.Links[rng.Intn(len(cfg.Links))]
		evs = append(evs, Event{Kind: LinkFlap, From: l[0], To: l[1], At: at, Duration: dur})
	}
	for i := 0; i < cfg.HostCrashes; i++ {
		at, dur := draw()
		evs = append(evs, Event{Kind: HostCrash, Host: cfg.Hosts[rng.Intn(len(cfg.Hosts))], At: at, Duration: dur})
	}
	for i := 0; i < cfg.DiskDegrades; i++ {
		at, dur := draw()
		evs = append(evs, Event{
			Kind: DiskDegrade, Host: cfg.Hosts[rng.Intn(len(cfg.Hosts))],
			At: at, Duration: dur, Severity: 0.5 + 0.4*rng.Float64(),
		})
	}
	for i := 0; i < cfg.MonitorOutages; i++ {
		at, dur := draw()
		evs = append(evs, Event{Kind: MonitorOutage, At: at, Duration: dur})
	}
	sortEvents(evs)
	return &Plan{Events: evs}, nil
}

// MonitorGate pauses and resumes a deployment's monitoring substrate;
// info.Deployment.SetMonitorsPaused satisfies it.
type MonitorGate interface {
	SetMonitorsPaused(paused bool)
}

// Injector installs fault plans onto one testbed. Overlapping episodes
// against the same target nest: the target recovers when the last
// covering episode ends.
type Injector struct {
	tb   *cluster.Testbed
	gate MonitorGate

	// Nesting depths per target; apply on 0->1, revert on 1->0.
	hostDepth map[string]int
	linkDepth map[string]int
	// degradeJobs holds the live load handles of in-progress
	// DiskDegrade episodes.
	degradeJobs []degradeJob
	outages     int
	installed   int
}

// NewInjector wires an injector to a testbed. gate may be nil when the
// plan carries no monitor outages.
func NewInjector(tb *cluster.Testbed, gate MonitorGate) (*Injector, error) {
	if tb == nil {
		return nil, errors.New("faults: nil testbed")
	}
	return &Injector{
		tb:        tb,
		gate:      gate,
		hostDepth: make(map[string]int),
		linkDepth: make(map[string]int),
	}, nil
}

// Installed returns the number of episodes scheduled so far.
func (in *Injector) Installed() int { return in.installed }

// Install schedules every episode of the plan as engine events. It
// validates targets up front so a bad plan fails before anything is
// scheduled. Must run before or on the simulation goroutine.
func (in *Injector) Install(p *Plan) error {
	if p == nil {
		return errors.New("faults: nil plan")
	}
	net := in.tb.Network()
	for _, ev := range p.Events {
		if ev.At < 0 || ev.Duration <= 0 {
			return fmt.Errorf("faults: bad schedule for %v", ev)
		}
		switch ev.Kind {
		case LinkFlap:
			if _, err := net.GetLink(ev.From, ev.To); err != nil {
				return fmt.Errorf("faults: %v: %w", ev, err)
			}
			if _, err := net.GetLink(ev.To, ev.From); err != nil {
				return fmt.Errorf("faults: %v: %w", ev, err)
			}
		case HostCrash, DiskDegrade:
			if _, err := in.tb.Host(ev.Host); err != nil {
				return fmt.Errorf("faults: %v: %w", ev, err)
			}
			if ev.Kind == DiskDegrade && (ev.Severity < 0 || ev.Severity > 1) {
				return fmt.Errorf("faults: %v: severity out of [0,1]", ev)
			}
		case MonitorOutage:
			if in.gate == nil {
				return fmt.Errorf("faults: %v: injector has no monitor gate", ev)
			}
		default:
			return fmt.Errorf("faults: unknown kind %v", ev.Kind)
		}
	}
	engine := in.tb.Engine()
	for _, ev := range p.Events {
		ev := ev
		if _, err := engine.Schedule(ev.At, func(time.Duration) { in.apply(ev) }); err != nil {
			return err
		}
		if _, err := engine.Schedule(ev.At+ev.Duration, func(time.Duration) { in.revert(ev) }); err != nil {
			return err
		}
		in.installed++
	}
	return nil
}

func linkKey(from, to string) string {
	if from < to {
		return from + ">" + to
	}
	return to + ">" + from
}

func (in *Injector) apply(ev Event) {
	switch ev.Kind {
	case LinkFlap:
		k := linkKey(ev.From, ev.To)
		in.linkDepth[k]++
		if in.linkDepth[k] == 1 {
			net := in.tb.Network()
			_ = net.SetLinkDown(ev.From, ev.To, true)
			_ = net.SetLinkDown(ev.To, ev.From, true)
		}
	case HostCrash:
		in.hostDepth[ev.Host]++
		if in.hostDepth[ev.Host] == 1 {
			_ = in.tb.SetHostDown(ev.Host, true)
		}
	case DiskDegrade:
		h, err := in.tb.Host(ev.Host)
		if err != nil {
			return
		}
		// Each episode carries its own job; overlaps stack and the
		// aggregate saturates at full load inside cluster.
		if job, err := h.AddJob(0, ev.Severity); err == nil {
			in.degradeJobs = append(in.degradeJobs, degradeJob{ev: ev, job: job})
		}
	case MonitorOutage:
		in.outages++
		if in.outages == 1 {
			in.gate.SetMonitorsPaused(true)
		}
	}
}

func (in *Injector) revert(ev Event) {
	switch ev.Kind {
	case LinkFlap:
		k := linkKey(ev.From, ev.To)
		in.linkDepth[k]--
		if in.linkDepth[k] == 0 {
			net := in.tb.Network()
			_ = net.SetLinkDown(ev.From, ev.To, false)
			_ = net.SetLinkDown(ev.To, ev.From, false)
		}
	case HostCrash:
		in.hostDepth[ev.Host]--
		if in.hostDepth[ev.Host] == 0 {
			_ = in.tb.SetHostDown(ev.Host, false)
		}
	case DiskDegrade:
		for i, dj := range in.degradeJobs {
			if dj.ev == ev {
				dj.job.Release()
				in.degradeJobs = append(in.degradeJobs[:i], in.degradeJobs[i+1:]...)
				break
			}
		}
	case MonitorOutage:
		in.outages--
		if in.outages == 0 {
			in.gate.SetMonitorsPaused(false)
		}
	}
}

// degradeJob pairs a DiskDegrade episode with its live load handle.
type degradeJob struct {
	ev  Event
	job *cluster.Job
}
