//go:build !linux

package runner

import "time"

// threadCPUTime reports that per-thread CPU accounting is unavailable
// on this platform; Result.CPU stays zero and only wall time is
// surfaced.
func threadCPUTime() (time.Duration, bool) { return 0, false }
