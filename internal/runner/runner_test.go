package runner

import (
	"errors"
	"fmt"
	"math/rand"
	"strings"
	"testing"
	"time"
)

// square returns jobs whose results encode (index, seed) so tests can
// verify ordering and seed derivation survive any scheduling.
func squareJobs(n int) []Job[int64] {
	jobs := make([]Job[int64], n)
	for i := 0; i < n; i++ {
		jobs[i] = Job[int64]{
			Name: fmt.Sprintf("sq/%d", i),
			Run: func(c Context) (int64, error) {
				// Burn a little CPU through a seeded RNG so jobs finish
				// out of submission order under parallelism.
				rng := rand.New(rand.NewSource(c.Seed))
				sum := int64(0)
				for k := 0; k < 1000+rng.Intn(1000); k++ {
					sum += int64(rng.Intn(7))
				}
				return int64(c.Index)*1_000_000 + sum%1000, nil
			},
		}
	}
	return jobs
}

func TestRunOrderedAndDeterministicAcrossWorkerCounts(t *testing.T) {
	jobs := squareJobs(37)
	var want []int64
	for _, workers := range []int{1, 2, 3, 8, 64} {
		res, err := Run(jobs, Options{Workers: workers, Seed: 42})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if len(res) != len(jobs) {
			t.Fatalf("workers=%d: %d results, want %d", workers, len(res), len(jobs))
		}
		for i, r := range res {
			if r.Index != i || r.Name != jobs[i].Name {
				t.Fatalf("workers=%d: result %d has Index=%d Name=%q", workers, i, r.Index, r.Name)
			}
			if r.Err != nil || r.Skipped {
				t.Fatalf("workers=%d: result %d: err=%v skipped=%v", workers, i, r.Err, r.Skipped)
			}
		}
		got := Values(res)
		if want == nil {
			want = got
			continue
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("workers=%d: value[%d] = %d, want %d (results depend on scheduling)",
					workers, i, got[i], want[i])
			}
		}
	}
}

func TestRunEmpty(t *testing.T) {
	res, err := Run[int](nil, Options{})
	if err != nil || len(res) != 0 {
		t.Fatalf("Run(nil) = %v, %v", res, err)
	}
}

func TestRunSurfacesTiming(t *testing.T) {
	jobs := []Job[int]{{
		Name: "spin",
		Run: func(Context) (int, error) {
			// Busy-spin so both wall and (on Linux) CPU time are nonzero.
			deadline := time.Now().Add(5 * time.Millisecond)
			x := 0
			for time.Now().Before(deadline) {
				x++
			}
			return x, nil
		},
	}}
	res, err := Run(jobs, Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res[0].Wall <= 0 {
		t.Fatalf("Wall = %v, want > 0", res[0].Wall)
	}
	if _, ok := threadCPUTime(); ok && res[0].CPU <= 0 {
		t.Fatalf("CPU = %v, want > 0 on a platform with per-thread accounting", res[0].CPU)
	}
	if TotalWall(res) != res[0].Wall {
		t.Fatalf("TotalWall = %v, want %v", TotalWall(res), res[0].Wall)
	}
}

func TestRunFailFastSkipsPendingJobs(t *testing.T) {
	boom := errors.New("boom")
	const n = 200
	jobs := make([]Job[int], n)
	for i := 0; i < n; i++ {
		jobs[i] = Job[int]{Name: fmt.Sprintf("j%d", i), Run: func(c Context) (int, error) {
			if c.Index == 0 {
				return 0, boom
			}
			return c.Index, nil
		}}
	}
	res, err := Run(jobs, Options{Workers: 2, Policy: FailFast})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want wrapped %v", err, boom)
	}
	if !strings.Contains(err.Error(), "j0") {
		t.Fatalf("err = %v, want job name j0", err)
	}
	skipped := 0
	for _, r := range res {
		if r.Skipped {
			skipped++
			if r.Err != nil || r.Wall != 0 {
				t.Fatalf("skipped job %d has err=%v wall=%v", r.Index, r.Err, r.Wall)
			}
		}
	}
	// Job 0 fails while at most one other job is in flight; with 200
	// jobs and 2 workers the tail must be skipped.
	if skipped == 0 {
		t.Fatal("FailFast skipped no jobs")
	}
}

func TestRunCollectAllRunsEverythingAndJoinsErrors(t *testing.T) {
	jobs := make([]Job[int], 10)
	for i := range jobs {
		jobs[i] = Job[int]{Name: fmt.Sprintf("j%d", i), Run: func(c Context) (int, error) {
			if c.Index%3 == 0 {
				return 0, fmt.Errorf("fail-%d", c.Index)
			}
			return c.Index, nil
		}}
	}
	res, err := Run(jobs, Options{Workers: 4, Policy: CollectAll})
	if err == nil {
		t.Fatal("want error")
	}
	for i := 0; i < 10; i += 3 {
		if !strings.Contains(err.Error(), fmt.Sprintf("fail-%d", i)) {
			t.Fatalf("joined error missing fail-%d: %v", i, err)
		}
	}
	for _, r := range res {
		if r.Skipped {
			t.Fatalf("CollectAll skipped job %d", r.Index)
		}
		if r.Index%3 != 0 && r.Value != r.Index {
			t.Fatalf("job %d value = %d", r.Index, r.Value)
		}
	}
}

func TestRunRecoversPanics(t *testing.T) {
	jobs := []Job[int]{
		{Name: "ok", Run: func(Context) (int, error) { return 7, nil }},
		{Name: "bad", Run: func(Context) (int, error) { panic("kaboom") }},
	}
	res, err := Run(jobs, Options{Workers: 2, Policy: CollectAll})
	if err == nil || !strings.Contains(err.Error(), "kaboom") {
		t.Fatalf("err = %v, want panic message", err)
	}
	if res[0].Value != 7 || res[0].Err != nil {
		t.Fatalf("healthy job disturbed: %+v", res[0])
	}
	if res[1].Err == nil || !strings.Contains(res[1].Err.Error(), "panicked") {
		t.Fatalf("panic not converted to error: %+v", res[1])
	}
}

func TestRunAnonymousJobNamesInErrors(t *testing.T) {
	jobs := []Job[int]{{Run: func(Context) (int, error) { return 0, errors.New("x") }}}
	_, err := Run(jobs, Options{})
	if err == nil || !strings.Contains(err.Error(), "job[0]") {
		t.Fatalf("err = %v, want job[0] label", err)
	}
}

func TestDeriveSeedGoldenValues(t *testing.T) {
	// Pinned outputs of the SplitMix64 stream: any change to the
	// derivation silently reseeds every -trials replication, so it must
	// be deliberate.
	cases := []struct {
		base  int64
		index int
		want  int64
	}{
		{42, 0, -4767286540954276203},
		{42, 1, 2949826092126892291},
		{42, 2, 5139283748462763858},
		{43, 0, -5014216602933006456},
		{0, 0, -2152535657050944081},
	}
	for _, c := range cases {
		if got := DeriveSeed(c.base, c.index); got != c.want {
			t.Errorf("DeriveSeed(%d, %d) = %d, want %d", c.base, c.index, got, c.want)
		}
	}
}

func TestDeriveSeedInjectiveOverIndexes(t *testing.T) {
	seen := map[int64]int{}
	for i := 0; i < 100_000; i++ {
		s := DeriveSeed(42, i)
		if prev, dup := seen[s]; dup {
			t.Fatalf("DeriveSeed(42, %d) == DeriveSeed(42, %d) == %d", i, prev, s)
		}
		seen[s] = i
	}
}

// TestRunStressRace floods the pool with more jobs than workers many
// times over; `go test -race ./internal/runner/...` runs it under the
// race detector (a CI gate). Each job builds private state and hashes
// its derived seed, so any accidental sharing between workers trips the
// detector or the determinism comparison below.
func TestRunStressRace(t *testing.T) {
	const n = 128 // ≥64 concurrent-capable jobs, twice over
	mk := func() []Job[uint64] {
		jobs := make([]Job[uint64], n)
		for i := 0; i < n; i++ {
			jobs[i] = Job[uint64]{
				Name: fmt.Sprintf("stress/%d", i),
				Run: func(c Context) (uint64, error) {
					rng := rand.New(rand.NewSource(c.Seed))
					buf := make([]uint64, 256)
					for k := range buf {
						buf[k] = rng.Uint64()
					}
					var h uint64 = 1469598103934665603
					for _, v := range buf {
						h = (h ^ v) * 1099511628211
					}
					return h, nil
				},
			}
		}
		return jobs
	}
	resA, err := Run(mk(), Options{Workers: 64, Seed: 7, Policy: CollectAll})
	if err != nil {
		t.Fatal(err)
	}
	resB, err := Run(mk(), Options{Workers: 3, Seed: 7, Policy: CollectAll})
	if err != nil {
		t.Fatal(err)
	}
	for i := range resA {
		if resA[i].Value != resB[i].Value {
			t.Fatalf("job %d: 64-worker value %x != 3-worker value %x", i, resA[i].Value, resB[i].Value)
		}
	}
}
