package runner

// splitmix64Gamma is the golden-ratio increment of the SplitMix64
// generator (Steele, Lea & Flood, "Fast Splittable Pseudorandom Number
// Generators", OOPSLA 2014).
const splitmix64Gamma = 0x9E3779B97F4A7C15

// splitmix64Mix is the SplitMix64 output finalizer: a bijective
// avalanche mix, so distinct inputs always produce distinct outputs.
func splitmix64Mix(z uint64) uint64 {
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// DeriveSeed returns the index-th seed of the SplitMix64 stream rooted
// at base: splitmix64(base, index). Each (base, index) pair maps to a
// statistically independent seed, and for a fixed base the map
// index -> seed is injective, so jobs never share an RNG stream no
// matter how many there are.
//
// The published experiments do NOT pass this through to their worlds —
// they pin the verbatim base seed so their output stays byte-identical
// to the paper's sequential runs. Derived seeds serve the multi-trial
// replication path (gridbench -trials) and any future experiment that
// wants per-job independent randomness.
func DeriveSeed(base int64, index int) int64 {
	return int64(splitmix64Mix(uint64(base) + (uint64(index)+1)*splitmix64Gamma))
}
