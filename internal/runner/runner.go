// Package runner is a deterministic fan-out/ordered-collect worker pool
// for simulation jobs.
//
// The evaluation suite (internal/experiments, cmd/gridbench) is a sweep
// of independent simulations: every point of Fig. 3/4, every Table 1
// candidate and every ablation row builds its own disposable world from
// a seed. The runner executes such jobs on up to GOMAXPROCS OS threads
// and hands the results back in submission order, so the assembled
// tables and figures are byte-identical to a sequential run no matter
// how the scheduler interleaves the workers.
//
// Determinism contract (see docs/PERFORMANCE.md):
//
//   - A Job must be self-contained: it builds every mutable structure it
//     touches (simulation.Engine, netsim.Network, cluster.Testbed, RNGs)
//     inside Run. Engines are single-goroutine by design; the
//     enginesharing gridlint analyzer rejects code that leaks one into a
//     goroutine or channel.
//   - A Job may read shared immutable data (a measurement trace, a
//     config slice) but must not write anything outside its own return
//     value.
//   - Randomness comes either from a seed the closure captured verbatim
//     (how the published experiments pin their worlds) or from
//     Context.Seed, which is derived as splitmix64(Options.Seed,
//     job index) and therefore independent of worker count and
//     scheduling order.
//
// Under those rules Run(jobs, opts) is a pure function of (jobs,
// opts.Seed) — the Workers knob changes wall-clock time only.
package runner

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"
)

// Job is one named unit of work producing a typed result.
type Job[T any] struct {
	// Name labels the job in errors and timing reports, e.g.
	// "fig4/streams=8/256MB". Empty names render as "job[i]".
	Name string
	// Run performs the work. It is called at most once, from exactly one
	// worker goroutine.
	Run func(c Context) (T, error)
}

// Context carries the per-job execution context into a Job's Run.
type Context struct {
	// Index is the job's position in the submitted slice.
	Index int
	// Seed is this job's private RNG seed, DeriveSeed(Options.Seed,
	// Index). It depends only on the base seed and the job index — never
	// on worker count or scheduling — so a job that seeds its world from
	// it produces the same result under any parallelism.
	Seed int64
}

// Policy selects how Run reacts to a failing job.
type Policy int

const (
	// FailFast stops dispatching new jobs after the first failure;
	// already-running jobs finish, not-yet-started jobs are marked
	// Skipped. Run returns the error of the lowest-indexed failed job.
	// Note the *identity* of that error can depend on timing (an
	// earlier-indexed job may be skipped before its failure is ever
	// observed); use CollectAll when deterministic error sets matter.
	FailFast Policy = iota
	// CollectAll runs every job regardless of failures and returns the
	// joined errors in submission order.
	CollectAll
)

// Options configures one Run call.
type Options struct {
	// Workers caps concurrent jobs. Values <= 0 mean GOMAXPROCS(0); the
	// cap is further clamped to len(jobs).
	Workers int
	// Seed is the base seed from which each job's Context.Seed is
	// derived.
	Seed int64
	// Policy is the error policy; the zero value is FailFast.
	Policy Policy
}

// Result is one job's outcome, returned in submission order.
type Result[T any] struct {
	Name  string
	Index int
	Value T
	// Err is the job's error, or a wrapped panic value if Run panicked.
	Err error
	// Skipped marks a job that was never started because an earlier
	// failure tripped the FailFast policy.
	Skipped bool
	// Wall is the job's wall-clock duration (zero when skipped).
	Wall time.Duration
	// CPU is the job's on-thread CPU time (user+system) where the
	// platform supports per-thread accounting (RUSAGE_THREAD on Linux);
	// zero elsewhere. Workers are locked to their OS thread for the
	// lifetime of a job, so this is an honest per-job measure.
	CPU time.Duration
}

// Run executes jobs on a bounded worker pool and returns their results
// in submission order. The returned error is nil when every job
// succeeded; under FailFast it is the lowest-indexed observed failure,
// under CollectAll the errors.Join of every failure in submission order.
// The full result slice is returned even on error, so callers can
// inspect partial outcomes and per-job timing.
func Run[T any](jobs []Job[T], opts Options) ([]Result[T], error) {
	results := make([]Result[T], len(jobs))
	for i := range results {
		results[i].Name = jobs[i].Name
		results[i].Index = i
	}
	if len(jobs) == 0 {
		return results, nil
	}
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(jobs) {
		workers = len(jobs)
	}

	var next atomic.Int64 // next job index to dispatch
	var failed atomic.Bool
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			// Pin the worker to its OS thread so per-thread CPU
			// accounting attributes a job's cycles to the thread that
			// ran it.
			runtime.LockOSThread()
			defer runtime.UnlockOSThread()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(jobs) {
					return
				}
				r := &results[i]
				if opts.Policy == FailFast && failed.Load() {
					r.Skipped = true
					continue
				}
				cpu0, cpuOK := threadCPUTime()
				start := time.Now() //gridlint:wallclock-ok measures host wall-clock of a job, not simulated time
				var v T
				var err error
				func() {
					defer func() {
						if p := recover(); p != nil {
							err = fmt.Errorf("job panicked: %v", p)
						}
					}()
					v, err = jobs[i].Run(Context{Index: i, Seed: DeriveSeed(opts.Seed, i)})
				}()
				r.Wall = time.Since(start) //gridlint:wallclock-ok measures host wall-clock of a job, not simulated time
				if cpu1, ok := threadCPUTime(); ok && cpuOK {
					r.CPU = cpu1 - cpu0
				}
				r.Value, r.Err = v, err
				if err != nil && opts.Policy == FailFast {
					failed.Store(true)
				}
			}
		}()
	}
	wg.Wait()

	var errs []error
	for i := range results {
		if results[i].Err != nil {
			errs = append(errs, fmt.Errorf("%s: %w", jobName(results[i].Name, i), results[i].Err))
		}
	}
	if len(errs) == 0 {
		return results, nil
	}
	if opts.Policy == FailFast {
		return results, errs[0]
	}
	return results, errors.Join(errs...)
}

// Values extracts the job values from results, in submission order.
func Values[T any](results []Result[T]) []T {
	out := make([]T, len(results))
	for i := range results {
		out[i] = results[i].Value
	}
	return out
}

// TotalWall sums the per-job wall time — the work a sequential run
// would have serialized. Comparing it against the pool's elapsed time
// gives the realized speedup.
func TotalWall[T any](results []Result[T]) time.Duration {
	var sum time.Duration
	for i := range results {
		sum += results[i].Wall
	}
	return sum
}

func jobName(name string, i int) string {
	if name == "" {
		return fmt.Sprintf("job[%d]", i)
	}
	return name
}
