//go:build linux

package runner

import (
	"syscall"
	"time"
)

// rusageThread is RUSAGE_THREAD: resource usage of the calling thread
// only. The syscall package does not export the constant, but the
// kernel ABI fixes it at 1 on every Linux architecture.
const rusageThread = 1

// threadCPUTime returns the calling OS thread's consumed CPU time
// (user + system). Callers must be locked to their thread
// (runtime.LockOSThread) for the value to be attributable.
func threadCPUTime() (time.Duration, bool) {
	var ru syscall.Rusage
	if err := syscall.Getrusage(rusageThread, &ru); err != nil {
		return 0, false
	}
	return time.Duration(ru.Utime.Nano() + ru.Stime.Nano()), true
}
