package traffic

import (
	"sort"

	"github.com/hpclab/datagrid/internal/core"
	"github.com/hpclab/datagrid/internal/topo"
)

// nearestFirst reorders ranked candidates by network proximity to the
// requesting host — same host, then same site, then same region, then
// everything else — preserving the selection hierarchy's score order
// within each tier. The hierarchy ranks each region's replicas against
// that region's monitoring snapshot, but it is requester-agnostic:
// scores say which replica is healthiest, not which is near this
// client. On a WAN topology the client-side tiering is what turns a
// freshly replicated intra-region copy into an actually shorter
// transfer — the paper's client-view selection applied at the request
// plane — and it is also what gives the dynamic-replication control
// loop a latency signal to improve at all.
func nearestFirst(cands []core.Candidate, requester string) []core.Candidate {
	site := topo.SiteOfHost(requester)
	region := topo.RegionOfHost(requester)
	tier := func(c core.Candidate) int {
		h := c.Location.Host
		switch {
		case h == requester:
			return 0
		case topo.SiteOfHost(h) == site:
			return 1
		case topo.RegionOfHost(h) == region:
			return 2
		}
		return 3
	}
	sort.SliceStable(cands, func(i, j int) bool {
		return tier(cands[i]) < tier(cands[j])
	})
	return cands
}
