// Package traffic is the open-loop request plane for the simulated data
// grid: per-region client populations emit millions of seeded,
// Zipf-skewed file requests against a generated planet-scale topology,
// every request is served through the hierarchical selection stack and
// the unified simxfer.Submit API, and a streaming collector reduces the
// result stream to latency quantiles, goodput and load skew without
// retaining per-request records.
//
// The plane closes the loop the paper leaves open: a placement.Policy
// watches the access stream and, at control-epoch boundaries, grows hot
// files and shrinks cold ones by scheduling real replication transfers
// on the same simulated network the client traffic competes with.
//
// Determinism is the design driver. A Run with a given Spec is
// byte-identical at any shard count because every piece of mutable grid
// state lives on exactly one shard:
//
//   - Client arrival processes run on their region's shard, each with a
//     private RNG; they only append to per-region queues.
//   - The driver drains those queues at fixed dispatch boundaries
//     (global barriers where every shard clock agrees) and schedules all
//     transfers on shard 0 — mirror 0 therefore executes the exact event
//     sequence a sequential run would, and the other mirrors never touch
//     observable state.
//   - Selection is epoch-pinned: grid-state snapshots are rebuilt only
//     at epoch boundaries while the engines are stopped, so every rank
//     within an epoch scores the same frozen snapshot.
//   - Faults install on mirror 0 only, where all observable state lives.
package traffic

import (
	"errors"
	"fmt"
	"time"

	"github.com/hpclab/datagrid/internal/simxfer"
	"github.com/hpclab/datagrid/internal/topo"
	"github.com/hpclab/datagrid/internal/workload"
)

// PolicyKind selects the dynamic-replication policy a Run closes the
// control loop with.
type PolicyKind int

const (
	// PolicyNone is the static baseline: the replica set placed at build
	// time never changes.
	PolicyNone PolicyKind = iota
	// PolicyPopularity runs placement.PopularityPolicy: weighted
	// hot/warm/cold classification per epoch, replica factors evolving
	// one step at a time.
	PolicyPopularity
)

func (k PolicyKind) String() string {
	switch k {
	case PolicyNone:
		return "none"
	case PolicyPopularity:
		return "popularity"
	default:
		return fmt.Sprintf("PolicyKind(%d)", int(k))
	}
}

// Spec declares one traffic-plane run. The zero value is not runnable;
// every field without a stated default must be set.
type Spec struct {
	// Seed drives every random draw outside the topology itself: client
	// arrivals, file popularity, size mix, destination choice, fault
	// schedules and replica-landing hosts.
	Seed int64
	// Topology shapes the world; its Seed field is overridden with Seed.
	Topology topo.Spec
	// Files and Replicas parameterize the initial catalog placement.
	Files, Replicas int
	// FileBytes is the catalog size of each logical file — the cost of a
	// dynamic replication copy. Default 256 MB.
	FileBytes int64
	// RatePerMinute is each region's base client arrival rate before
	// diurnal modulation.
	RatePerMinute float64
	// Horizon is how long clients generate requests.
	Horizon time.Duration
	// DispatchInterval is the drain cadence: arrivals buffered on their
	// region's shard are submitted as transfers one interval later.
	// Default 10s.
	DispatchInterval time.Duration
	// Epoch is the control-loop cadence: snapshot republish and policy
	// OnEpoch. Must be a multiple of DispatchInterval. Default 5m.
	Epoch time.Duration

	// HotFiles and WarmFiles split the catalog into popularity classes
	// (fractions in (0,1); the remainder is cold). HotShare and
	// WarmShare are the request shares the classes attract.
	HotFiles, WarmFiles float64
	HotShare, WarmShare float64
	// ZipfS is the rank skew within each class; must be > 1.
	ZipfS float64

	// DiurnalAmplitude modulates each region's rate sinusoidally in
	// [base*(1-A), base*(1+A)]; must be in [0,1). Regions are phase
	// shifted by their index, so global load follows the sun. Zero
	// disables modulation.
	DiurnalAmplitude float64
	// DiurnalPeriod is the virtual day length. Default 24h.
	DiurnalPeriod time.Duration

	// SizesMB is the request size mix; each request draws uniformly.
	SizesMB []int64
	// Streams is the GridFTP parallel stream count per transfer.
	Streams int
	// TCPBufferBytes is the per-channel TCP window for every transfer
	// (client requests and replication copies alike). Zero keeps the
	// protocol's un-tuned 64 KiB default; planetary WAN paths want a
	// tuned window, or the window/RTT bound dominates every transfer.
	TCPBufferBytes int
	// Failover, when true, arms every request with a reselecting
	// failover policy; otherwise requests ride the legacy single-source
	// path and stall through faults.
	Failover bool
	// FaultIntensity scales the injected fault schedule; 0 is fault-free.
	FaultIntensity int

	// Policy picks the dynamic-replication control loop.
	Policy PolicyKind
	// MinReplicas and MaxReplicas bound PolicyPopularity's replica
	// factors. Defaults 1 and Topology.Regions.
	MinReplicas, MaxReplicas int
}

// withDefaults returns the spec with defaults applied, validating it.
func (s Spec) withDefaults() (Spec, error) {
	if s.FileBytes == 0 {
		s.FileBytes = 256 * workload.MB
	}
	if s.DispatchInterval == 0 {
		s.DispatchInterval = 10 * time.Second
	}
	if s.Epoch == 0 {
		s.Epoch = 5 * time.Minute
	}
	if s.DiurnalPeriod == 0 {
		s.DiurnalPeriod = 24 * time.Hour
	}
	if s.MinReplicas == 0 {
		s.MinReplicas = 1
	}
	if s.MaxReplicas == 0 {
		s.MaxReplicas = s.Topology.Regions
	}
	if s.Topology.Regions < 2 {
		return s, errors.New("traffic: need at least 2 regions (the sharded engine needs a boundary cut)")
	}
	if s.Files < 3 || s.Replicas <= 0 {
		return s, fmt.Errorf("traffic: need files >= 3 (one per class) and replicas > 0, got %d/%d", s.Files, s.Replicas)
	}
	if s.FileBytes <= 0 {
		return s, fmt.Errorf("traffic: FileBytes must be positive, got %d", s.FileBytes)
	}
	if s.RatePerMinute <= 0 {
		return s, fmt.Errorf("traffic: RatePerMinute must be positive, got %v", s.RatePerMinute)
	}
	if s.Horizon <= 0 {
		return s, fmt.Errorf("traffic: Horizon must be positive, got %v", s.Horizon)
	}
	if s.DispatchInterval <= 0 || s.Epoch <= 0 || s.Epoch%s.DispatchInterval != 0 {
		return s, fmt.Errorf("traffic: Epoch %v must be a positive multiple of DispatchInterval %v",
			s.Epoch, s.DispatchInterval)
	}
	if s.HotFiles <= 0 || s.WarmFiles <= 0 || s.HotFiles+s.WarmFiles >= 1 {
		return s, fmt.Errorf("traffic: file class fractions (%v,%v) must be positive and sum below 1",
			s.HotFiles, s.WarmFiles)
	}
	if s.HotShare <= 0 || s.WarmShare <= 0 || s.HotShare+s.WarmShare >= 1 {
		return s, fmt.Errorf("traffic: request shares (%v,%v) must be positive and sum below 1",
			s.HotShare, s.WarmShare)
	}
	if s.ZipfS <= 1 {
		return s, fmt.Errorf("traffic: ZipfS must be > 1, got %v", s.ZipfS)
	}
	if s.DiurnalAmplitude < 0 || s.DiurnalAmplitude >= 1 {
		return s, fmt.Errorf("traffic: DiurnalAmplitude must be in [0,1), got %v", s.DiurnalAmplitude)
	}
	if s.DiurnalPeriod <= 0 {
		return s, fmt.Errorf("traffic: DiurnalPeriod must be positive, got %v", s.DiurnalPeriod)
	}
	if len(s.SizesMB) == 0 {
		return s, errors.New("traffic: SizesMB must name at least one size")
	}
	for _, mb := range s.SizesMB {
		if mb <= 0 {
			return s, fmt.Errorf("traffic: request sizes must be positive, got %d MB", mb)
		}
	}
	if s.Streams < 0 {
		return s, fmt.Errorf("traffic: Streams must be non-negative, got %d", s.Streams)
	}
	if s.TCPBufferBytes < 0 {
		return s, fmt.Errorf("traffic: TCPBufferBytes must be non-negative, got %d", s.TCPBufferBytes)
	}
	if s.FaultIntensity < 0 {
		return s, fmt.Errorf("traffic: FaultIntensity must be non-negative, got %d", s.FaultIntensity)
	}
	switch s.Policy {
	case PolicyNone, PolicyPopularity:
	default:
		return s, fmt.Errorf("traffic: unknown policy %d", int(s.Policy))
	}
	if s.MinReplicas < 1 || s.MaxReplicas < s.MinReplicas {
		return s, fmt.Errorf("traffic: replica bounds [%d,%d] invalid", s.MinReplicas, s.MaxReplicas)
	}
	if s.Replicas > s.Topology.Regions {
		return s, fmt.Errorf("traffic: %d initial replicas exceed %d regions", s.Replicas, s.Topology.Regions)
	}
	return s, nil
}

// options is the transfer configuration every plane transfer uses:
// GridFTP with the spec's stream count and TCP window.
func (s Spec) options() simxfer.Options {
	o := simxfer.GridFTPOptions(s.Streams)
	o.TCPBufferBytes = s.TCPBufferBytes
	return o
}

// classBounds returns the [hot, warm) and [warm, cold) boundaries as
// file-index cutoffs. Every class holds at least one file.
func (s Spec) classBounds() (hotEnd, warmEnd int) {
	hotEnd = int(s.HotFiles * float64(s.Files))
	if hotEnd < 1 {
		hotEnd = 1
	}
	warmEnd = hotEnd + int(s.WarmFiles*float64(s.Files))
	if warmEnd <= hotEnd {
		warmEnd = hotEnd + 1
	}
	if warmEnd >= s.Files {
		warmEnd = s.Files - 1
	}
	if hotEnd >= warmEnd {
		hotEnd = warmEnd - 1
	}
	return hotEnd, warmEnd
}
