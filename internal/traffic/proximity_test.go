package traffic

import (
	"testing"

	"github.com/hpclab/datagrid/internal/core"
	"github.com/hpclab/datagrid/internal/replica"
)

func TestNearestFirst(t *testing.T) {
	mk := func(host string, score float64) core.Candidate {
		return core.Candidate{Location: replica.Location{Host: host, Path: "/grid/f"}, Score: score}
	}
	// Score order (best first) as the hierarchy would return it: a far
	// high-scoring replica ahead of closer, lower-scored ones.
	cands := []core.Candidate{
		mk("r09s01c0h00", 90), // other region
		mk("r02s04c0h01", 80), // same region, other site
		mk("r09s02c0h00", 70), // other region
		mk("r02s00c0h03", 60), // same site
		mk("r02s00c0h01", 50), // the requester itself
	}
	got := nearestFirst(cands, "r02s00c0h01")
	want := []string{
		"r02s00c0h01", // tier 0: local
		"r02s00c0h03", // tier 1: same site
		"r02s04c0h01", // tier 2: same region
		"r09s01c0h00", // tier 3: score order preserved
		"r09s02c0h00",
	}
	for i, w := range want {
		if got[i].Location.Host != w {
			t.Fatalf("position %d: got %s, want %s", i, got[i].Location.Host, w)
		}
	}
	// Foreign requester names tier everything equally: order unchanged.
	cands = []core.Candidate{mk("r09s01c0h00", 90), mk("r02s04c0h01", 80)}
	got = nearestFirst(cands, "thu-node1")
	if got[0].Location.Host != "r09s01c0h00" || got[1].Location.Host != "r02s04c0h01" {
		t.Error("foreign requester should preserve score order")
	}
}
