package traffic

import (
	"reflect"
	"testing"
	"time"

	"github.com/hpclab/datagrid/internal/topo"
)

// testSpec is a small but fully featured run: 4 regions, skewed
// popularity, diurnal modulation, faults, failover and the popularity
// control loop all on.
func testSpec() Spec {
	return Spec{
		Seed: 42,
		Topology: topo.Spec{
			Regions: 4, SitesPerRegion: 1, ClustersPerSite: 1, HostsPerCluster: 3,
		},
		Files:            12,
		Replicas:         2,
		RatePerMinute:    30,
		Horizon:          30 * time.Minute,
		DispatchInterval: 10 * time.Second,
		Epoch:            5 * time.Minute,
		HotFiles:         0.2,
		WarmFiles:        0.3,
		HotShare:         0.6,
		WarmShare:        0.3,
		ZipfS:            1.5,
		DiurnalAmplitude: 0.5,
		DiurnalPeriod:    time.Hour,
		SizesMB:          []int64{1, 4},
		Streams:          4,
		Failover:         true,
		FaultIntensity:   1,
		Policy:           PolicyPopularity,
	}
}

func TestSpecValidation(t *testing.T) {
	bad := []func(*Spec){
		func(s *Spec) { s.Topology.Regions = 1 },
		func(s *Spec) { s.Files = 2 },
		func(s *Spec) { s.Replicas = 0 },
		func(s *Spec) { s.RatePerMinute = 0 },
		func(s *Spec) { s.Horizon = 0 },
		func(s *Spec) { s.Epoch = 7 * time.Second }, // not a dispatch multiple
		func(s *Spec) { s.HotFiles = 0.8; s.WarmFiles = 0.3 },
		func(s *Spec) { s.HotShare = 0 },
		func(s *Spec) { s.ZipfS = 1 },
		func(s *Spec) { s.DiurnalAmplitude = 1 },
		func(s *Spec) { s.SizesMB = nil },
		func(s *Spec) { s.SizesMB = []int64{0} },
		func(s *Spec) { s.FaultIntensity = -1 },
		func(s *Spec) { s.Policy = PolicyKind(9) },
		func(s *Spec) { s.MinReplicas = 3; s.MaxReplicas = 2 },
		func(s *Spec) { s.Replicas = 5 }, // > regions
	}
	for i, mutate := range bad {
		s := testSpec()
		mutate(&s)
		if _, err := s.withDefaults(); err == nil {
			t.Errorf("mutation %d should fail validation", i)
		}
	}
	if _, err := testSpec().withDefaults(); err != nil {
		t.Fatalf("base spec invalid: %v", err)
	}
}

func TestClassBounds(t *testing.T) {
	s := testSpec()
	hot, warm := s.classBounds()
	if hot < 1 || warm <= hot || warm >= s.Files {
		t.Fatalf("class bounds (%d,%d) degenerate for %d files", hot, warm, s.Files)
	}
	s.Files = 3
	hot, warm = s.classBounds()
	if hot != 1 || warm != 2 {
		t.Fatalf("3-file bounds = (%d,%d), want (1,2)", hot, warm)
	}
}

// TestRunShardCountInvariance pins the tentpole determinism property:
// the identical Report at 1, 2 and 4 shards, and across repeated runs.
func TestRunShardCountInvariance(t *testing.T) {
	base, err := Run(testSpec(), 1)
	if err != nil {
		t.Fatal(err)
	}
	if base.Requests == 0 || base.Completed == 0 {
		t.Fatalf("run did nothing: %+v", base)
	}
	for _, shards := range []int{1, 2, 4} {
		got, err := Run(testSpec(), shards)
		if err != nil {
			t.Fatalf("shards=%d: %v", shards, err)
		}
		if !reflect.DeepEqual(base, got) {
			t.Fatalf("shards=%d diverged:\nbase %+v\ngot  %+v", shards, base, got)
		}
	}
}

// TestRunReportSanity checks the reduction's internal consistency on the
// full-featured spec.
func TestRunReportSanity(t *testing.T) {
	r, err := Run(testSpec(), 2)
	if err != nil {
		t.Fatal(err)
	}
	if r.Completed+r.Failed+r.LocalHits != r.Requests {
		t.Fatalf("accounting broken: %d + %d + %d != %d", r.Completed, r.Failed, r.LocalHits, r.Requests)
	}
	// ~30/min/region * 4 regions * 30 min = ~3600 before diurnal wobble.
	if r.Requests < 2500 || r.Requests > 5000 {
		t.Fatalf("requests = %d, want ~3600", r.Requests)
	}
	if !(r.P50 > 0 && r.P50 <= r.P95 && r.P95 <= r.P99) {
		t.Fatalf("quantiles out of order: p50=%v p95=%v p99=%v", r.P50, r.P95, r.P99)
	}
	if r.GoodputMbps <= 0 {
		t.Fatalf("goodput = %v", r.GoodputMbps)
	}
	if r.SiteSkew < 1 {
		t.Fatalf("site skew = %v, want >= 1", r.SiteSkew)
	}
	if r.Attempts < r.Completed+r.Failed {
		t.Fatalf("failover attempts %d below transfer count %d", r.Attempts, r.Completed+r.Failed)
	}
	if r.Selections == 0 || r.HostsScanned == 0 {
		t.Fatalf("hierarchy idle: %+v", r)
	}
}

// TestPopularityLoopActs: with hot traffic concentrated on few files the
// control loop must replicate something, and the catalog churn must not
// break any later selection (Run would fail).
func TestPopularityLoopActs(t *testing.T) {
	spec := testSpec()
	spec.FaultIntensity = 0
	r, err := Run(spec, 2)
	if err != nil {
		t.Fatal(err)
	}
	if r.Replications == 0 {
		t.Fatalf("popularity loop never replicated: %+v", r)
	}
	if r.Hot+r.Warm+r.Cold == 0 {
		t.Fatalf("no final epoch classification: %+v", r)
	}
}

// TestPolicyNoneIsStatic: the baseline never places or removes replicas.
func TestPolicyNoneIsStatic(t *testing.T) {
	spec := testSpec()
	spec.Policy = PolicyNone
	spec.Failover = false
	spec.FaultIntensity = 0
	r, err := Run(spec, 1)
	if err != nil {
		t.Fatal(err)
	}
	if r.Replications != 0 || r.Removals != 0 {
		t.Fatalf("baseline mutated the catalog: %+v", r)
	}
	if r.Failed != 0 {
		t.Fatalf("fault-free legacy run failed %d transfers", r.Failed)
	}
	if r.Attempts != 0 {
		t.Fatalf("legacy path logged %d failover attempts", r.Attempts)
	}
}
