package traffic

import (
	"time"

	"github.com/hpclab/datagrid/internal/metrics"
	"github.com/hpclab/datagrid/internal/placement"
	"github.com/hpclab/datagrid/internal/simxfer"
	"github.com/hpclab/datagrid/internal/topo"
)

// collector is the streaming reduction of the result stream: latency
// quantiles via a mergeable log-bucket sketch, goodput and load skew via
// integer accumulators. Nothing per-request is retained, so a run's
// memory footprint is independent of its request count. All updates run
// on shard 0's goroutine (transfer completions) or the driver between
// runs; accumulators are integers so no float summation order exists to
// diverge.
type collector struct {
	latency *metrics.QuantileSketch

	submitted int
	completed int
	failed    int
	localHits int
	attempts  int
	inflight  int

	bytesDone int64
	// servedBySite counts completed serves per origin site — the load
	// skew input.
	servedBySite map[string]uint64

	policy placement.Policy
}

func newCollector(policy placement.Policy) *collector {
	return &collector{
		latency:      metrics.NewQuantileSketch(0.01),
		servedBySite: make(map[string]uint64),
		policy:       policy,
	}
}

// siteOf extracts the site from a generated host name
// ("r03s07c1h09" -> "r03s07"); unknown shapes collapse to one bucket.
func siteOf(host string) string {
	if len(host) >= 6 && topo.RegionOfHost(host) != "" {
		return host[:6]
	}
	return "?"
}

// done is the transfer completion callback.
func (c *collector) done(r simxfer.Result) {
	c.inflight--
	c.attempts += len(r.Attempts)
	if r.Err != nil {
		c.failed++
		return
	}
	c.completed++
	c.bytesDone += r.Bytes
	c.latency.Add(r.Duration().Seconds())
	src := r.Src
	if src == "" && len(r.Sources) > 0 {
		src = r.Sources[0]
	}
	c.servedBySite[siteOf(src)]++
}

// access reports one dispatched request to the placement policy. Runs on
// the driver goroutine at drain time.
func (c *collector) access(rq request, servedFrom string) error {
	return c.policy.OnAccess(placement.Access{
		Logical:    rq.file,
		ServedFrom: servedFrom,
		Client:     rq.dst,
		At:         rq.at,
	})
}

// quantile returns the latency quantile in seconds, 0 when nothing
// completed.
func (c *collector) quantile(q float64) float64 {
	v, err := c.latency.Quantile(q)
	if err != nil {
		return 0
	}
	return v
}

// skew returns max/mean completed serves across the sites that served
// anything — 1.0 is perfectly even, higher is hotter.
func (c *collector) skew() float64 {
	if len(c.servedBySite) == 0 {
		return 0
	}
	var max, total uint64
	for _, n := range c.servedBySite {
		total += n
		if n > max {
			max = n
		}
	}
	mean := float64(total) / float64(len(c.servedBySite))
	return float64(max) / mean
}

// goodputMbps is completed payload over the request horizon.
func (c *collector) goodputMbps(horizon time.Duration) float64 {
	s := horizon.Seconds()
	if s <= 0 {
		return 0
	}
	return float64(c.bytesDone) * 8 / 1e6 / s
}
