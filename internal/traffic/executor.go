package traffic

import (
	"fmt"
	"math/rand"
	"time"

	"github.com/hpclab/datagrid/internal/placement"
	"github.com/hpclab/datagrid/internal/replica"
	"github.com/hpclab/datagrid/internal/simxfer"
)

// gridExecutor applies popularity-policy decisions to the simulated
// grid: replica additions become real epoch-boundary transfers on the
// shared network (registered in the catalog only when the copy lands),
// removals unregister immediately. It is driven exclusively from the
// driver goroutine at epoch boundaries; completion callbacks run on
// shard 0 during the following windows.
type gridExecutor struct {
	w   *world
	c   *collector
	rng *rand.Rand // replica landing-host draws, in decision order
	now time.Duration
}

var _ placement.Executor = (*gridExecutor)(nil)

func newGridExecutor(w *world, c *collector) *gridExecutor {
	return &gridExecutor{w: w, c: c, rng: rand.New(rand.NewSource(w.spec.Seed + 5))}
}

// HoldingRegions reports the regions holding the file, sorted.
func (e *gridExecutor) HoldingRegions(logical string) ([]string, error) {
	return e.w.cat.RegionsWith(logical)
}

// AddReplica copies the file from its best-ranked current holder to a
// host in the target region, registering the new location when the
// transfer completes. The copy is a real transfer: it competes with
// client traffic for the same links.
func (e *gridExecutor) AddReplica(logical, region string, done func(error)) error {
	hosts := e.w.top.HostsByRegion[region]
	if len(hosts) == 0 {
		return fmt.Errorf("traffic: unknown replica region %q", region)
	}
	best, err := e.w.srv.SelectBest(logical, e.now)
	if err != nil {
		return err
	}
	lf, err := e.w.cat.Logical(logical)
	if err != nil {
		return err
	}
	dst := hosts[e.rng.Intn(len(hosts))]
	src := best.Location.Host
	if src == dst {
		return fmt.Errorf("traffic: replica of %s would copy %s onto itself", logical, src)
	}
	e.c.inflight++
	_, err = e.w.se.Shard(0).Schedule(e.now, func(time.Duration) {
		err := e.w.xfer.Submit(simxfer.Request{
			Sources: []string{src},
			Dst:     dst,
			Bytes:   lf.SizeBytes,
			Options: e.w.spec.options(),
			Done: func(r simxfer.Result) {
				e.c.inflight--
				if r.Err == nil {
					r.Err = e.w.cat.Register(logical, replicaLocation(region, dst, logical))
				}
				done(r.Err)
			},
		})
		if err != nil {
			// Submit validates against a built world; rejection here means
			// the executor fed it garbage.
			panic(fmt.Sprintf("traffic: replica copy %s -> %s failed to start: %v", src, dst, err))
		}
	})
	if err != nil {
		e.c.inflight--
		return err
	}
	return nil
}

// replicaLocation is where dynamic copies land, distinguishable from the
// initial placement's /grid paths.
func replicaLocation(region, host, logical string) replica.Location {
	return replica.Location{Host: host, Path: "/replicas/" + region + "/" + logical}
}

// RemoveReplica retires the file's first (sorted) location in the
// region, refusing to orphan the last copy anywhere.
func (e *gridExecutor) RemoveReplica(logical, region string) error {
	regions, err := e.w.cat.RegionsWith(logical)
	if err != nil {
		return err
	}
	if len(regions) < 2 {
		return fmt.Errorf("traffic: refusing to orphan %s (only %v holds it)", logical, regions)
	}
	shard := e.w.cat.Shard(region)
	if shard == nil {
		return fmt.Errorf("traffic: unknown replica region %q", region)
	}
	locs, err := shard.Locations(logical)
	if err != nil {
		return err
	}
	return e.w.cat.Unregister(logical, locs[0].Host, locs[0].Path)
}
