package traffic

import (
	"fmt"
	"math"
	"math/rand"
	"time"

	"github.com/hpclab/datagrid/internal/workload"
)

// request is one buffered client arrival, waiting for the next dispatch
// drain.
type request struct {
	at    time.Duration
	file  string
	bytes int64
	dst   string
}

// generator is one region's client population: a seeded arrival process
// running on the region's own engine shard, drawing file, size and
// destination per arrival and buffering the result until the driver
// drains it at the next dispatch boundary. Everything it touches is
// private to its shard's goroutine; the driver reads the buffer only
// between engine runs.
type generator struct {
	region  string
	rng     *rand.Rand
	hot     *rand.Zipf
	warm    *rand.Zipf
	cold    *rand.Zipf
	spec    Spec
	hotEnd  int
	warmEnd int
	hosts   []string

	arrivals *workload.Arrivals
	pending  []request
}

// newGenerator wires region index r's arrival process onto sched (the
// region's shard engine). The RNG seed folds the region index so every
// region draws an independent, reproducible stream regardless of how
// regions map to shards.
func newGenerator(w *world, r int) (*generator, error) {
	spec := w.spec
	region := w.top.Regions[r]
	hotEnd, warmEnd := spec.classBounds()
	g := &generator{
		region:  region,
		rng:     rand.New(rand.NewSource(spec.Seed + 1000 + int64(r)*7919)),
		spec:    spec,
		hotEnd:  hotEnd,
		warmEnd: warmEnd,
		hosts:   w.top.HostsByRegion[region],
	}
	if len(g.hosts) == 0 {
		return nil, fmt.Errorf("traffic: region %s has no hosts", region)
	}
	// Zipf samplers per class, all drawing from the generator's one RNG:
	// rank 0 is the class's most popular file.
	mk := func(n int) (*rand.Zipf, error) {
		z := rand.NewZipf(g.rng, spec.ZipfS, 1, uint64(n-1))
		if z == nil {
			return nil, fmt.Errorf("traffic: bad Zipf parameters s=%v n=%d", spec.ZipfS, n)
		}
		return z, nil
	}
	var err error
	if g.hot, err = mk(hotEnd); err != nil {
		return nil, err
	}
	if g.warm, err = mk(warmEnd - hotEnd); err != nil {
		return nil, err
	}
	if g.cold, err = mk(spec.Files - warmEnd); err != nil {
		return nil, err
	}

	// Diurnal intensity: regions are phase-shifted by index so load
	// follows the sun around the generated planet.
	base, amp := spec.RatePerMinute, spec.DiurnalAmplitude
	period, phase := spec.DiurnalPeriod.Seconds(), float64(r)/float64(len(w.top.Regions))
	rate := func(now time.Duration) float64 {
		if amp == 0 {
			return base
		}
		return base * (1 + amp*math.Sin(2*math.Pi*(now.Seconds()/period+phase)))
	}
	g.arrivals, err = workload.NewArrivals(w.se.Shard(w.regionShard[region]), g.rng, rate,
		func(now time.Duration) { g.fire(now) })
	if err != nil {
		return nil, err
	}
	return g, nil
}

// fire draws one request. Runs on the generator's shard goroutine.
func (g *generator) fire(now time.Duration) {
	var idx int
	switch u := g.rng.Float64(); {
	case u < g.spec.HotShare:
		idx = int(g.hot.Uint64())
	case u < g.spec.HotShare+g.spec.WarmShare:
		idx = g.hotEnd + int(g.warm.Uint64())
	default:
		idx = g.warmEnd + int(g.cold.Uint64())
	}
	g.pending = append(g.pending, request{
		at:    now,
		file:  fmt.Sprintf("lfn:d%d", idx),
		bytes: g.spec.SizesMB[g.rng.Intn(len(g.spec.SizesMB))] * workload.MB,
		dst:   g.hosts[g.rng.Intn(len(g.hosts))],
	})
}

// take hands the buffered arrivals to the driver and resets the buffer.
// Must only run between engine runs.
func (g *generator) take() []request {
	out := g.pending
	g.pending = g.pending[len(g.pending):]
	return out
}

// stop halts the arrival process.
func (g *generator) stop() { g.arrivals.Stop() }

// count returns how many arrivals the region has emitted.
func (g *generator) count() int { return g.arrivals.Count() }
