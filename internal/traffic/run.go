package traffic

import (
	"fmt"
	"time"

	"github.com/hpclab/datagrid/internal/placement"
	"github.com/hpclab/datagrid/internal/simxfer"
	"github.com/hpclab/datagrid/internal/topo"
)

// Report is one run's streaming reduction: request accounting, transfer
// latency quantiles (seconds), goodput over the horizon, per-site load
// skew and the control loop's placement activity. All fields derive from
// integer accumulators or the order-independent sketch, so a Report is
// byte-identical across shard counts and run repetitions.
type Report struct {
	// Requests is how many client arrivals were dispatched; Completed,
	// Failed and LocalHits partition their outcomes (a local hit is a
	// request whose best replica already sits on the requesting host —
	// served from local disk, no transfer). Attempts counts failover
	// attempts across all transfers (0 without a failover policy).
	Requests  int
	Completed int
	Failed    int
	LocalHits int
	Attempts  int
	// P50, P95 and P99 are transfer-latency quantiles in seconds.
	P50, P95, P99 float64
	// GoodputMbps is completed payload over the request horizon.
	GoodputMbps float64
	// SiteSkew is max/mean completed serves across serving sites.
	SiteSkew float64
	// Replications, Removals and Evictions are the placement policy's
	// completed actions; Hot, Warm and Cold are its final epoch's class
	// sizes. All zero under PolicyNone.
	Replications int
	Removals     int
	Hot, Warm    int
	Cold         int
	// Selections and HostsScanned are the hierarchy's selection-work
	// counters.
	Selections   uint64
	HostsScanned uint64
}

// maxSources caps how many ranked candidates a failover request carries.
const maxSources = 4

// settleSlack bounds how long past the horizon the driver waits for
// in-flight transfers (stalled flows recover when their fault episodes
// end; failover transfers are bounded by attempt caps and timeouts).
const settleSlack = 12 * time.Hour

// Run executes the spec on a sharded engine with the given shard count.
// The report is byte-identical for any shards >= 1.
func Run(spec Spec, shards int) (*Report, error) {
	spec, err := spec.withDefaults()
	if err != nil {
		return nil, err
	}
	w, err := buildWorld(spec, shards)
	if err != nil {
		return nil, err
	}

	var pol placement.Policy
	var c *collector
	var exec *gridExecutor
	switch spec.Policy {
	case PolicyNone:
		pol = placement.NoReplication{}
		c = newCollector(pol)
	case PolicyPopularity:
		c = newCollector(nil) // wired below; executor needs the collector
		exec = newGridExecutor(w, c)
		p, err := placement.NewPopularityPolicy(exec, placement.PopularityConfig{
			RegionOf:    topo.RegionOfHost,
			Regions:     len(w.top.Regions),
			MinReplicas: spec.MinReplicas,
			MaxReplicas: spec.MaxReplicas,
		})
		if err != nil {
			return nil, err
		}
		pol = p
		c.policy = pol
	}

	gens := make([]*generator, len(w.top.Regions))
	for r := range w.top.Regions {
		if gens[r], err = newGenerator(w, r); err != nil {
			return nil, err
		}
	}

	// The epoch-pinned snapshot discipline: publish at each boundary
	// while the engines are stopped, rank against that frozen snapshot
	// until the next one.
	epochStart := time.Duration(0)
	if err := w.republish(epochStart); err != nil {
		return nil, err
	}

	failover := func() *simxfer.FailoverPolicy {
		if !spec.Failover {
			return nil
		}
		return &simxfer.FailoverPolicy{
			Mode:           simxfer.FailoverReselect,
			MaxAttempts:    3,
			InitialBackoff: 2 * time.Second,
			MaxBackoff:     30 * time.Second,
			AttemptTimeout: 4 * time.Minute,
			Rank: func(_ time.Duration, alive []string) []string {
				out := make([]string, 0, len(alive))
				for _, h := range alive {
					if down, err := w.tbs[0].HostDown(h); err == nil && !down {
						out = append(out, h)
					}
				}
				if len(out) == 0 {
					return alive
				}
				return out
			},
		}
	}

	// dispatch drains one region's buffered arrivals: rank each file on
	// the pinned epoch snapshot, then schedule the transfer on shard 0
	// one dispatch interval after its arrival — always in the engines'
	// future, spread like the arrivals themselves.
	dispatch := func(g *generator) error {
		for _, rq := range g.take() {
			cands, err := w.srv.Rank(rq.file, epochStart)
			if err != nil {
				return fmt.Errorf("traffic: rank %s: %w", rq.file, err)
			}
			cands = nearestFirst(cands, rq.dst)
			// A replica already on the requesting host is a local hit:
			// served from disk, no transfer. Deeper candidates on the
			// destination are filtered so failover never "transfers" to
			// itself.
			if cands[0].Location.Host == rq.dst {
				c.submitted++
				c.localHits++
				if err := c.access(rq, rq.dst); err != nil {
					return err
				}
				continue
			}
			sources := make([]string, 0, maxSources)
			for _, cand := range cands {
				if cand.Location.Host == rq.dst {
					continue
				}
				sources = append(sources, cand.Location.Host)
				if len(sources) == maxSources {
					break
				}
			}
			if !spec.Failover {
				sources = sources[:1]
			}
			if err := c.access(rq, sources[0]); err != nil {
				return err
			}
			req := simxfer.Request{
				Sources:  sources,
				Dst:      rq.dst,
				Bytes:    rq.bytes,
				Options:  spec.options(),
				Failover: failover(),
				Done:     c.done,
			}
			c.submitted++
			c.inflight++
			if _, err := w.se.Shard(0).Schedule(rq.at+spec.DispatchInterval, func(time.Duration) {
				if err := w.xfer.Submit(req); err != nil {
					// Submit rejects malformed requests only; the driver
					// builds them from a validated spec.
					panic(fmt.Sprintf("traffic: submit %s -> %s: %v", req.Sources[0], req.Dst, err))
				}
			}); err != nil {
				return err
			}
		}
		return nil
	}

	for now := time.Duration(0); now < spec.Horizon; {
		now += spec.DispatchInterval
		if err := w.se.RunUntil(now); err != nil {
			return nil, err
		}
		if now%spec.Epoch == 0 {
			if err := w.republish(now); err != nil {
				return nil, err
			}
			epochStart = now
			if exec != nil {
				exec.now = now
			}
			if err := pol.OnEpoch(now); err != nil {
				return nil, err
			}
		}
		for _, g := range gens {
			if err := dispatch(g); err != nil {
				return nil, err
			}
		}
	}
	for _, g := range gens {
		g.stop()
	}
	// Settle: the tail of in-flight transfers (including replication
	// copies) completes within bounded virtual time.
	deadline := spec.Horizon
	for c.inflight > 0 {
		deadline += 5 * time.Minute
		if deadline > spec.Horizon+settleSlack {
			return nil, fmt.Errorf("traffic: %d transfers still in flight at %v", c.inflight, deadline)
		}
		if err := w.se.RunUntil(deadline); err != nil {
			return nil, err
		}
	}

	st := pol.Stats()
	hs := w.srv.Stats()
	return &Report{
		Requests:     c.submitted,
		Completed:    c.completed,
		Failed:       c.failed,
		LocalHits:    c.localHits,
		Attempts:     c.attempts,
		P50:          c.quantile(0.50),
		P95:          c.quantile(0.95),
		P99:          c.quantile(0.99),
		GoodputMbps:  c.goodputMbps(spec.Horizon),
		SiteSkew:     c.skew(),
		Replications: st.Replications,
		Removals:     st.Removals,
		Hot:          st.Hot,
		Warm:         st.Warm,
		Cold:         st.Cold,
		Selections:   hs.Selections,
		HostsScanned: hs.HostsScanned,
	}, nil
}
