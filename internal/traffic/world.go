package traffic

import (
	"fmt"
	"math/rand"
	"time"

	"github.com/hpclab/datagrid/internal/cluster"
	"github.com/hpclab/datagrid/internal/core"
	"github.com/hpclab/datagrid/internal/faults"
	"github.com/hpclab/datagrid/internal/gridstate"
	"github.com/hpclab/datagrid/internal/replica"
	"github.com/hpclab/datagrid/internal/simulation"
	"github.com/hpclab/datagrid/internal/simxfer"
	"github.com/hpclab/datagrid/internal/topo"
)

// world is one built traffic grid: a topology mirrored across the
// engine shards, the sharded catalog and hierarchical selection stack,
// and the transferrer every flow runs through. All observable state —
// transfers, faults, monitoring reads — lives on mirror 0; mirrors 1..n
// exist only to advance their regions' arrival processes in parallel.
type world struct {
	spec Spec
	top  *topo.Topology
	se   *simulation.ShardedEngine
	tbs  []*cluster.Testbed
	cat  *replica.ShardedCatalog
	srv  *core.HierarchicalServer
	pubs map[string]*gridstate.Publisher
	xfer *simxfer.Transferrer

	regionShard map[string]int
}

// hubBuilder derives a host's HostPerf from mirror 0's live network and
// load state, observed from the host's region hub — the same derivation
// the planet-scale sweep uses, bound to the one mirror transfers run on.
type hubBuilder struct {
	tb  *cluster.Testbed
	hub string
}

func (b hubBuilder) BuildHostPerf(host string, now time.Duration) (gridstate.HostPerf, error) {
	net := b.tb.Network()
	theo, err := net.BottleneckBps(b.hub, host)
	if err != nil {
		return gridstate.HostPerf{}, err
	}
	avail, err := net.AvailableBps(b.hub, host)
	if err != nil {
		return gridstate.HostPerf{}, err
	}
	h, err := b.tb.Host(host)
	if err != nil {
		return gridstate.HostPerf{}, err
	}
	return gridstate.HostPerf{
		Host:             host,
		Local:            b.hub,
		BandwidthMbps:    avail / 1e6,
		TheoreticalMbps:  theo / 1e6,
		BandwidthPercent: 100 * avail / theo,
		CPUIdlePercent:   100 * h.CPUIdle(),
		IOIdlePercent:    100 * h.IOIdle(),
		At:               now,
	}, nil
}

// buildWorld realizes the spec on a sharded engine. Every mirror replays
// the identical base-load draw sequence so mirror state agrees bitwise;
// the catalog, hierarchy and transferrer are built once against mirror 0.
func buildWorld(spec Spec, shards int) (*world, error) {
	if shards < 1 {
		return nil, fmt.Errorf("traffic: need at least 1 shard, got %d", shards)
	}
	ts := spec.Topology
	ts.Seed = spec.Seed
	top, err := topo.Generate(ts)
	if err != nil {
		return nil, err
	}
	_, lookahead, err := top.BoundaryCut()
	if err != nil {
		return nil, err
	}
	se, err := simulation.NewSharded(shards, lookahead)
	if err != nil {
		return nil, err
	}
	w := &world{
		spec:        spec,
		top:         top,
		se:          se,
		tbs:         make([]*cluster.Testbed, shards),
		pubs:        make(map[string]*gridstate.Publisher, len(top.Regions)),
		regionShard: make(map[string]int, len(top.Regions)),
	}
	for i, region := range top.Regions {
		w.regionShard[region] = i % shards
	}
	for s := 0; s < shards; s++ {
		tb, err := top.Build(se.Shard(s))
		if err != nil {
			return nil, err
		}
		rng := rand.New(rand.NewSource(spec.Seed + 1))
		for _, region := range top.Regions {
			for _, hn := range top.HostsByRegion[region] {
				h, err := tb.Host(hn)
				if err != nil {
					return nil, err
				}
				if err := h.SetBaseCPULoad(0.05 + 0.85*rng.Float64()); err != nil {
					return nil, err
				}
				if err := h.SetBaseIOLoad(0.05 + 0.85*rng.Float64()); err != nil {
					return nil, err
				}
			}
		}
		w.tbs[s] = tb
	}
	w.cat = replica.NewSharded(topo.RegionOfHost)
	if err := top.PlaceFiles(w.cat, spec.Files, spec.Replicas, spec.FileBytes); err != nil {
		return nil, err
	}
	w.srv, err = core.NewHierarchicalServer(w.cat, core.PaperWeights, nil)
	if err != nil {
		return nil, err
	}
	for _, region := range top.Regions {
		pub, err := gridstate.NewPublisher(
			top.HubSwitch[region], top.HostsByRegion[region],
			hubBuilder{tb: w.tbs[0], hub: top.HubSwitch[region]})
		if err != nil {
			return nil, err
		}
		w.pubs[region] = pub
		if err := w.srv.AddRegion(region, pub); err != nil {
			return nil, err
		}
	}
	w.xfer, err = simxfer.New(w.tbs[0])
	if err != nil {
		return nil, err
	}
	if err := w.installFaults(); err != nil {
		return nil, err
	}
	return w, nil
}

// installFaults draws the spec's fault schedule and installs it on
// mirror 0 — the only mirror whose state is observable (flows, publisher
// reads and liveness checks all go through tbs[0]). Monitor outages are
// excluded: the traffic plane's thin publishers have no gate to pause.
func (w *world) installFaults() error {
	if w.spec.FaultIntensity <= 0 {
		return nil
	}
	cut, _, err := w.top.BoundaryCut()
	if err != nil {
		return err
	}
	links := make([][2]string, 0, len(cut))
	for _, bl := range cut {
		links = append(links, [2]string{cluster.SwitchNode(bl.From), cluster.SwitchNode(bl.To)})
	}
	// Victim hosts: the first two hosts of every region — a fixed,
	// topology-derived set so intensity sweeps stay comparable.
	var hosts []string
	for _, region := range w.top.Regions {
		rh := w.top.HostsByRegion[region]
		for i := 0; i < 2 && i < len(rh); i++ {
			hosts = append(hosts, rh[i])
		}
	}
	n := w.spec.FaultIntensity
	plan, err := faults.GeneratePlan(faults.Config{
		Seed:         w.spec.Seed + int64(n)*7919,
		Horizon:      w.spec.Horizon,
		MeanDuration: 2 * time.Minute,
		LinkFlaps:    3 * n,
		HostCrashes:  2 * n,
		DiskDegrades: 2 * n,
		Hosts:        hosts,
		Links:        links,
	})
	if err != nil {
		return err
	}
	inj, err := faults.NewInjector(w.tbs[0], nil)
	if err != nil {
		return err
	}
	return inj.Install(plan)
}

// republish rebuilds every region's grid-state snapshot at the epoch
// boundary, while the engines are stopped and mirror 0's state is the
// globally agreed state at now. Every Rank call until the next boundary
// scores these frozen snapshots.
func (w *world) republish(now time.Duration) error {
	for _, region := range w.top.Regions {
		// Each iteration pins a different region's publisher at the same
		// agreed boundary instant — the repeat is across publishers, not
		// a stale repin of one.
		//gridlint:snapshotdiscipline-ok one snapshot per region publisher at the epoch boundary
		if s := w.pubs[region].Snapshot(now); s == nil {
			return fmt.Errorf("traffic: republish %s at %v produced no snapshot", region, now)
		}
	}
	return nil
}
