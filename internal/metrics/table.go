package metrics

import (
	"fmt"
	"strings"
)

// Table renders aligned plain-text tables in the style of the paper's
// Table 1. Columns are sized to their widest cell.
type Table struct {
	title   string
	headers []string
	rows    [][]string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{title: title, headers: headers}
}

// AddRow appends a row. Cells beyond the header count are dropped; missing
// cells render empty.
func (t *Table) AddRow(cells ...string) {
	row := make([]string, len(t.headers))
	for i := 0; i < len(t.headers) && i < len(cells); i++ {
		row[i] = cells[i]
	}
	t.rows = append(t.rows, row)
}

// AddRowf appends a row formatting each value with its paired verb, e.g.
// AddRowf("%s", "alpha1", "%.2f", 12.5).
func (t *Table) AddRowf(pairs ...any) error {
	if len(pairs)%2 != 0 {
		return fmt.Errorf("metrics: AddRowf needs verb/value pairs, got %d args", len(pairs))
	}
	var cells []string
	for i := 0; i < len(pairs); i += 2 {
		verb, ok := pairs[i].(string)
		if !ok {
			return fmt.Errorf("metrics: AddRowf verb at %d is %T, want string", i, pairs[i])
		}
		cells = append(cells, fmt.Sprintf(verb, pairs[i+1]))
	}
	t.AddRow(cells...)
	return nil
}

// NumRows returns the number of data rows added so far.
func (t *Table) NumRows() int { return len(t.rows) }

// String renders the table.
func (t *Table) String() string {
	widths := make([]int, len(t.headers))
	for i, h := range t.headers {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, c := range row {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	if t.title != "" {
		b.WriteString(t.title)
		b.WriteByte('\n')
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(t.headers)
	total := 0
	for _, w := range widths {
		total += w
	}
	total += 2 * (len(widths) - 1)
	b.WriteString(strings.Repeat("-", total))
	b.WriteByte('\n')
	for _, row := range t.rows {
		writeRow(row)
	}
	return b.String()
}

// Series is a named sequence of (x, y) points; the harness prints one
// Series per line of a paper figure.
type Series struct {
	Name string
	X    []float64
	Y    []float64
}

// AddPoint appends a point to the series.
func (s *Series) AddPoint(x, y float64) {
	s.X = append(s.X, x)
	s.Y = append(s.Y, y)
}

// RenderSeries prints a figure: one column per x value (the union of all
// series' x values in ascending order is not computed — series must share
// the same xs, as every figure in the paper does).
func RenderSeries(title, xLabel, yLabel string, series []Series) (string, error) {
	if len(series) == 0 {
		return "", ErrEmpty
	}
	n := len(series[0].X)
	for _, s := range series {
		if len(s.X) != n || len(s.Y) != n {
			return "", fmt.Errorf("metrics: series %q has %d/%d points, want %d", s.Name, len(s.X), len(s.Y), n)
		}
		for i := range s.X {
			if s.X[i] != series[0].X[i] {
				return "", fmt.Errorf("metrics: series %q x[%d]=%v differs from %v", s.Name, i, s.X[i], series[0].X[i])
			}
		}
	}
	headers := []string{fmt.Sprintf("%s \\ %s", yLabel, xLabel)}
	for _, x := range series[0].X {
		headers = append(headers, trimFloat(x))
	}
	t := NewTable(title, headers...)
	for _, s := range series {
		cells := []string{s.Name}
		for _, y := range s.Y {
			cells = append(cells, fmt.Sprintf("%.2f", y))
		}
		t.AddRow(cells...)
	}
	return t.String(), nil
}

func trimFloat(x float64) string {
	if x == float64(int64(x)) {
		return fmt.Sprintf("%d", int64(x))
	}
	return fmt.Sprintf("%g", x)
}
