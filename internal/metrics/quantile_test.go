package metrics

import (
	"math"
	"math/rand"
	"testing"
)

// TestQuantileSketchDeterminism pins the order-independence contract: the
// same multiset of observations, inserted in different orders or split
// across merged sketches, must yield bit-identical quantiles.
func TestQuantileSketchDeterminism(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	xs := make([]float64, 5000)
	for i := range xs {
		xs[i] = math.Exp(rng.NormFloat64()) * 1e6
	}

	fwd := NewQuantileSketch(0.01)
	for _, x := range xs {
		fwd.Add(x)
	}
	rev := NewQuantileSketch(0.01)
	for i := len(xs) - 1; i >= 0; i-- {
		rev.Add(xs[i])
	}
	// Split across 4 "shards" round-robin, then merge.
	shards := make([]*QuantileSketch, 4)
	for i := range shards {
		shards[i] = NewQuantileSketch(0.01)
	}
	for i, x := range xs {
		shards[i%4].Add(x)
	}
	merged := NewQuantileSketch(0.01)
	for _, sh := range shards {
		if err := merged.Merge(sh); err != nil {
			t.Fatalf("Merge: %v", err)
		}
	}

	for _, q := range []float64{0, 0.25, 0.5, 0.9, 0.95, 0.99, 0.999, 1} {
		want, err := fwd.Quantile(q)
		if err != nil {
			t.Fatalf("Quantile(%v): %v", q, err)
		}
		got, err := rev.Quantile(q)
		if err != nil || got != want {
			t.Fatalf("reverse-order Quantile(%v) = %v, %v; want %v", q, got, err, want)
		}
		got, err = merged.Quantile(q)
		if err != nil || got != want {
			t.Fatalf("merged Quantile(%v) = %v, %v; want %v", q, got, err, want)
		}
	}
	if fwd.Count() != merged.Count() {
		t.Fatalf("merged Count = %d, want %d", merged.Count(), fwd.Count())
	}
}

// TestQuantileSketchAccuracy checks the relative-accuracy guarantee against
// the exact estimator on seeded distributions of different shapes.
func TestQuantileSketchAccuracy(t *testing.T) {
	const alpha = 0.01
	rng := rand.New(rand.NewSource(11))
	dists := map[string]func() float64{
		"uniform":     func() float64 { return rng.Float64() * 1000 },
		"exponential": func() float64 { return rng.ExpFloat64() * 50 },
		"lognormal":   func() float64 { return math.Exp(rng.NormFloat64()*2 + 10) },
	}
	names := []string{"uniform", "exponential", "lognormal"}
	for _, name := range names {
		draw := dists[name]
		xs := make([]float64, 20000)
		sk := NewQuantileSketch(alpha)
		for i := range xs {
			xs[i] = draw()
			sk.Add(xs[i])
		}
		for _, q := range []float64{0.5, 0.9, 0.95, 0.99} {
			exact, err := Percentile(xs, q*100)
			if err != nil {
				t.Fatalf("Percentile: %v", err)
			}
			got, err := sk.Quantile(q)
			if err != nil {
				t.Fatalf("Quantile: %v", err)
			}
			// The sketch guarantees alpha relative to the nearest-rank
			// sample; the exact estimator interpolates between ranks, so
			// allow one extra alpha of slack for the interpolation gap.
			if tol := 2 * alpha * exact; math.Abs(got-exact) > tol {
				t.Errorf("%s q=%v: sketch %v vs exact %v exceeds tolerance %v", name, q, got, exact, tol)
			}
		}
	}
}

func TestQuantileSketchEdges(t *testing.T) {
	s := NewQuantileSketch(0.02)
	if _, err := s.Quantile(0.5); err != ErrEmpty {
		t.Fatalf("empty Quantile err = %v, want ErrEmpty", err)
	}
	if _, err := s.Min(); err != ErrEmpty {
		t.Fatalf("empty Min err = %v, want ErrEmpty", err)
	}
	s.AddN(0, 3)
	s.Add(10)
	if q, err := s.Quantile(0); err != nil || q != 0 {
		t.Fatalf("Quantile(0) = %v, %v; want 0", q, err)
	}
	if q, err := s.Quantile(1); err != nil || q != 10 {
		t.Fatalf("Quantile(1) = %v, %v; want clamped max 10", q, err)
	}
	if mn, _ := s.Min(); mn != 0 {
		t.Fatalf("Min = %v, want 0", mn)
	}
	if mx, _ := s.Max(); mx != 10 {
		t.Fatalf("Max = %v, want 10", mx)
	}
	if _, err := s.Quantile(1.5); err == nil {
		t.Fatal("Quantile(1.5) should error")
	}
	other := NewQuantileSketch(0.01)
	if err := s.Merge(other); err == nil {
		t.Fatal("Merge with mismatched alpha should error")
	}

	defer func() {
		if recover() == nil {
			t.Fatal("Add(-1) should panic")
		}
	}()
	s.Add(-1)
}

// TestQuantileSketchSteadyStateAllocs pins the zero-allocation steady
// state: once the value range has been seen, Add touches only existing
// buckets and must not allocate. This is what keeps million-request
// collection flat.
func TestQuantileSketchSteadyStateAllocs(t *testing.T) {
	s := NewQuantileSketch(0.01)
	rng := rand.New(rand.NewSource(3))
	vals := make([]float64, 1024)
	for i := range vals {
		vals[i] = math.Exp(rng.NormFloat64()) * 1e6
		s.Add(vals[i]) // warm up: materialize every bucket these values hit
	}
	i := 0
	allocs := testing.AllocsPerRun(1000, func() {
		s.Add(vals[i%len(vals)])
		i++
	})
	if allocs != 0 {
		t.Fatalf("steady-state Add allocates %v times per op, want 0", allocs)
	}
}
