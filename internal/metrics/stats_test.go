package metrics

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, eps float64) bool { return math.Abs(a-b) <= eps }

func TestMean(t *testing.T) {
	m, err := Mean([]float64{1, 2, 3, 4})
	if err != nil || m != 2.5 {
		t.Fatalf("Mean = %v, %v; want 2.5", m, err)
	}
	if _, err := Mean(nil); err != ErrEmpty {
		t.Fatalf("Mean(nil) err = %v, want ErrEmpty", err)
	}
}

func TestVarianceAndStdDev(t *testing.T) {
	v, err := Variance([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if err != nil || v != 4 {
		t.Fatalf("Variance = %v, %v; want 4", v, err)
	}
	sd, err := StdDev([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if err != nil || sd != 2 {
		t.Fatalf("StdDev = %v, %v; want 2", sd, err)
	}
}

func TestMedian(t *testing.T) {
	cases := []struct {
		in   []float64
		want float64
	}{
		{[]float64{3, 1, 2}, 2},
		{[]float64{4, 1, 3, 2}, 2.5},
		{[]float64{5}, 5},
	}
	for _, c := range cases {
		got, err := Median(c.in)
		if err != nil || got != c.want {
			t.Fatalf("Median(%v) = %v, %v; want %v", c.in, got, err, c.want)
		}
	}
	if _, err := Median(nil); err != ErrEmpty {
		t.Fatal("Median(nil) should be ErrEmpty")
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	p50, err := Percentile(xs, 50)
	if err != nil || p50 != 5.5 {
		t.Fatalf("P50 = %v, %v; want 5.5", p50, err)
	}
	p0, _ := Percentile(xs, 0)
	p100, _ := Percentile(xs, 100)
	if p0 != 1 || p100 != 10 {
		t.Fatalf("P0=%v P100=%v, want 1 and 10", p0, p100)
	}
	if _, err := Percentile(xs, -1); err == nil {
		t.Fatal("negative percentile should error")
	}
	if _, err := Percentile(xs, 101); err == nil {
		t.Fatal("percentile > 100 should error")
	}
	one, err := Percentile([]float64{42}, 75)
	if err != nil || one != 42 {
		t.Fatalf("single-element percentile = %v, %v", one, err)
	}
}

func TestMinMax(t *testing.T) {
	min, max, err := MinMax([]float64{3, -1, 7, 2})
	if err != nil || min != -1 || max != 7 {
		t.Fatalf("MinMax = %v,%v,%v", min, max, err)
	}
	if _, _, err := MinMax(nil); err != ErrEmpty {
		t.Fatal("MinMax(nil) should be ErrEmpty")
	}
}

func TestSummarize(t *testing.T) {
	s, err := Summarize([]float64{1, 2, 3, 4, 5})
	if err != nil {
		t.Fatal(err)
	}
	if s.N != 5 || s.Mean != 3 || s.Min != 1 || s.Max != 5 || s.Median != 3 {
		t.Fatalf("Summary = %+v", s)
	}
	if s.String() == "" {
		t.Fatal("empty Summary string")
	}
	if _, err := Summarize(nil); err != ErrEmpty {
		t.Fatal("Summarize(nil) should be ErrEmpty")
	}
}

func TestMeanCI95(t *testing.T) {
	if _, _, err := MeanCI95(nil); err != ErrEmpty {
		t.Fatalf("MeanCI95(nil) err = %v, want ErrEmpty", err)
	}
	m, h, err := MeanCI95([]float64{7})
	if err != nil || m != 7 || h != 0 {
		t.Fatalf("single sample = (%v, %v, %v); want (7, 0, nil)", m, h, err)
	}
	// n=4: sample sd = 1.2909..., t(3 df) = 3.182, half = t*sd/sqrt(4).
	m, h, err = MeanCI95([]float64{1, 2, 3, 4})
	if err != nil || m != 2.5 {
		t.Fatalf("mean = %v, %v; want 2.5", m, err)
	}
	sd := math.Sqrt((2.25 + 0.25 + 0.25 + 2.25) / 3)
	if want := 3.182 * sd / 2; !almostEqual(h, want, 1e-9) {
		t.Fatalf("half-width = %v, want %v", h, want)
	}
	// Identical samples: zero-width interval.
	if _, h, _ = MeanCI95([]float64{5, 5, 5}); h != 0 {
		t.Fatalf("constant sample half-width = %v, want 0", h)
	}
	// Large n falls back to the normal quantile.
	big := make([]float64, 200)
	for i := range big {
		big[i] = float64(i % 2) // sd ~0.5, mean 0.5
	}
	_, h, _ = MeanCI95(big)
	sdBig := math.Sqrt(float64(len(big)) / float64(len(big)-1) * 0.25)
	if want := 1.960 * sdBig / math.Sqrt(200); !almostEqual(h, want, 1e-9) {
		t.Fatalf("large-n half-width = %v, want %v", h, want)
	}
}

func TestPearson(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	ys := []float64{2, 4, 6, 8, 10}
	r, err := Pearson(xs, ys)
	if err != nil || !almostEqual(r, 1, 1e-12) {
		t.Fatalf("Pearson = %v, %v; want 1", r, err)
	}
	neg := []float64{10, 8, 6, 4, 2}
	r, _ = Pearson(xs, neg)
	if !almostEqual(r, -1, 1e-12) {
		t.Fatalf("Pearson = %v, want -1", r)
	}
	if _, err := Pearson(xs, ys[:3]); err == nil {
		t.Fatal("length mismatch should error")
	}
	if _, err := Pearson([]float64{1}, []float64{2}); err == nil {
		t.Fatal("too-short input should error")
	}
	if _, err := Pearson([]float64{1, 1, 1}, []float64{1, 2, 3}); err == nil {
		t.Fatal("zero variance should error")
	}
}

func TestSpearman(t *testing.T) {
	// Monotone but non-linear relation: Spearman is exactly 1.
	xs := []float64{1, 2, 3, 4, 5}
	ys := []float64{1, 4, 9, 16, 25}
	r, err := Spearman(xs, ys)
	if err != nil || !almostEqual(r, 1, 1e-12) {
		t.Fatalf("Spearman = %v, %v; want 1", r, err)
	}
	rev := []float64{25, 16, 9, 4, 1}
	r, _ = Spearman(xs, rev)
	if !almostEqual(r, -1, 1e-12) {
		t.Fatalf("Spearman = %v, want -1", r)
	}
}

func TestSpearmanTies(t *testing.T) {
	xs := []float64{1, 2, 2, 3}
	ys := []float64{10, 20, 20, 30}
	r, err := Spearman(xs, ys)
	if err != nil || !almostEqual(r, 1, 1e-12) {
		t.Fatalf("Spearman with ties = %v, %v; want 1", r, err)
	}
}

func TestSameOrder(t *testing.T) {
	ok, err := SameOrder([]float64{1, 2, 3}, []float64{10, 20, 30})
	if err != nil || !ok {
		t.Fatalf("SameOrder aligned = %v, %v", ok, err)
	}
	ok, _ = SameOrder([]float64{1, 2, 3}, []float64{10, 30, 20})
	if ok {
		t.Fatal("SameOrder should detect inversion")
	}
	// Ties in keys permit any value order within the group.
	ok, _ = SameOrder([]float64{1, 1, 2}, []float64{20, 10, 30})
	if !ok {
		t.Fatal("tied keys should allow any order")
	}
	if _, err := SameOrder([]float64{1}, []float64{1, 2}); err == nil {
		t.Fatal("length mismatch should error")
	}
}

func TestWindow(t *testing.T) {
	w, err := NewWindow(3)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.Last(); err != ErrEmpty {
		t.Fatal("Last on empty window should be ErrEmpty")
	}
	w.Push(1)
	w.Push(2)
	if got := w.Values(); len(got) != 2 || got[0] != 1 || got[1] != 2 {
		t.Fatalf("Values = %v", got)
	}
	w.Push(3)
	w.Push(4) // evicts 1
	got := w.Values()
	if len(got) != 3 || got[0] != 2 || got[1] != 3 || got[2] != 4 {
		t.Fatalf("Values after wrap = %v", got)
	}
	last, err := w.Last()
	if err != nil || last != 4 {
		t.Fatalf("Last = %v, %v", last, err)
	}
	m, err := w.Mean()
	if err != nil || m != 3 {
		t.Fatalf("window Mean = %v, %v", m, err)
	}
	if w.Len() != 3 {
		t.Fatalf("Len = %d", w.Len())
	}
}

func TestWindowInvalidSize(t *testing.T) {
	if _, err := NewWindow(0); err == nil {
		t.Fatal("zero window should be rejected")
	}
	if _, err := NewWindow(-2); err == nil {
		t.Fatal("negative window should be rejected")
	}
}

func TestPropertyWindowKeepsLastK(t *testing.T) {
	f := func(seed int64, size uint8, n uint8) bool {
		k := int(size%16) + 1
		w, err := NewWindow(k)
		if err != nil {
			return false
		}
		rng := rand.New(rand.NewSource(seed))
		var all []float64
		for i := 0; i < int(n); i++ {
			x := rng.Float64()
			all = append(all, x)
			w.Push(x)
		}
		want := all
		if len(want) > k {
			want = want[len(want)-k:]
		}
		got := w.Values()
		if len(got) != len(want) {
			return false
		}
		for i := range got {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyPercentileWithinRange(t *testing.T) {
	f := func(seed int64, n uint8, p uint8) bool {
		if n == 0 {
			return true
		}
		rng := rand.New(rand.NewSource(seed))
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = rng.NormFloat64() * 100
		}
		pct := float64(p % 101)
		v, err := Percentile(xs, pct)
		if err != nil {
			return false
		}
		min, max, _ := MinMax(xs)
		return v >= min && v <= max
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertySpearmanMonotone(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(20) + 3
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = rng.Float64() * 1000
		}
		// Ensure distinct xs so correlation is defined.
		sort.Float64s(xs)
		for i := 1; i < n; i++ {
			if xs[i] <= xs[i-1] {
				xs[i] = xs[i-1] + 1
			}
		}
		ys := make([]float64, n)
		for i := range ys {
			ys[i] = math.Exp(xs[i] / 500) // strictly increasing transform
		}
		r, err := Spearman(xs, ys)
		return err == nil && almostEqual(r, 1, 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestTableRendering(t *testing.T) {
	tb := NewTable("Table 1", "host", "score", "time")
	tb.AddRow("alpha4", "95.1", "12.3")
	tb.AddRow("hit0", "72.0", "45.6")
	out := tb.String()
	if out == "" {
		t.Fatal("empty table output")
	}
	for _, want := range []string{"Table 1", "host", "alpha4", "45.6", "---"} {
		if !contains(out, want) {
			t.Fatalf("table output missing %q:\n%s", want, out)
		}
	}
	if tb.NumRows() != 2 {
		t.Fatalf("NumRows = %d", tb.NumRows())
	}
}

func TestTableRowPadding(t *testing.T) {
	tb := NewTable("", "a", "b")
	tb.AddRow("only-one")
	tb.AddRow("x", "y", "extra-dropped")
	out := tb.String()
	if contains(out, "extra-dropped") {
		t.Fatalf("extra cell should be dropped:\n%s", out)
	}
}

func TestTableAddRowf(t *testing.T) {
	tb := NewTable("", "host", "score")
	if err := tb.AddRowf("%s", "alpha1", "%.2f", 3.14159); err != nil {
		t.Fatal(err)
	}
	if !contains(tb.String(), "3.14") {
		t.Fatalf("formatted cell missing:\n%s", tb.String())
	}
	if err := tb.AddRowf("%s"); err == nil {
		t.Fatal("odd arg count should error")
	}
	if err := tb.AddRowf(1, 2); err == nil {
		t.Fatal("non-string verb should error")
	}
}

func TestRenderSeries(t *testing.T) {
	s1 := Series{Name: "FTP"}
	s2 := Series{Name: "GridFTP"}
	for _, x := range []float64{256, 512, 1024, 2048} {
		s1.AddPoint(x, x/10)
		s2.AddPoint(x, x/11)
	}
	out, err := RenderSeries("Figure 3", "MB", "sec", []Series{s1, s2})
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"Figure 3", "FTP", "GridFTP", "256", "2048"} {
		if !contains(out, want) {
			t.Fatalf("series output missing %q:\n%s", want, out)
		}
	}
}

func TestRenderSeriesErrors(t *testing.T) {
	if _, err := RenderSeries("t", "x", "y", nil); err != ErrEmpty {
		t.Fatal("empty series should be ErrEmpty")
	}
	a := Series{Name: "a", X: []float64{1, 2}, Y: []float64{1, 2}}
	b := Series{Name: "b", X: []float64{1}, Y: []float64{1}}
	if _, err := RenderSeries("t", "x", "y", []Series{a, b}); err == nil {
		t.Fatal("mismatched point counts should error")
	}
	c := Series{Name: "c", X: []float64{1, 3}, Y: []float64{1, 2}}
	if _, err := RenderSeries("t", "x", "y", []Series{a, c}); err == nil {
		t.Fatal("mismatched xs should error")
	}
}

func TestTrimFloat(t *testing.T) {
	if trimFloat(256) != "256" {
		t.Fatalf("trimFloat(256) = %q", trimFloat(256))
	}
	if trimFloat(0.5) != "0.5" {
		t.Fatalf("trimFloat(0.5) = %q", trimFloat(0.5))
	}
}

func contains(s, sub string) bool {
	return len(s) >= len(sub) && (func() bool {
		for i := 0; i+len(sub) <= len(s); i++ {
			if s[i:i+len(sub)] == sub {
				return true
			}
		}
		return false
	})()
}
