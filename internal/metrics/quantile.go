package metrics

import (
	"fmt"
	"math"
	"sort"
)

// QuantileSketch is a streaming quantile estimator with a relative-accuracy
// guarantee: Quantile(q) returns a value within a factor of (1 ± alpha) of
// the exact q-quantile of the inserted stream, using memory proportional to
// the log of the value range rather than the stream length. Million-request
// runs keep tens of buckets instead of millions of samples.
//
// Values are assigned to logarithmic buckets: for x > 0, bucket index
// i = ceil(log_gamma(x)) with gamma = (1+alpha)/(1-alpha), so every value
// in bucket i is within alpha (relatively) of the bucket midpoint the
// estimator reports. Zeros get a dedicated counter.
//
// Two properties matter for the deterministic harness and are guaranteed
// by construction:
//
//   - insertion-order independence: the sketch is a pure multiset of
//     bucket counts, so any permutation of the same stream yields an
//     identical sketch and identical quantiles;
//   - mergeability: Merge adds bucket counts, so per-shard sketches
//     combined in any grouping equal the sketch of the concatenated
//     stream. This is what lets sharded runs report byte-identical
//     quantiles at any shard count.
type QuantileSketch struct {
	alpha    float64
	gamma    float64
	invLnG   float64 // 1 / ln(gamma), precomputed for the hot path
	counts   map[int]uint64
	zeros    uint64
	total    uint64
	min, max float64
}

// NewQuantileSketch returns a sketch with the given relative accuracy
// (0 < alpha < 1). alpha = 0.01 keeps roughly 700 buckets per decade-range
// of nanosecond latencies and answers within 1%.
func NewQuantileSketch(alpha float64) *QuantileSketch {
	if alpha <= 0 || alpha >= 1 {
		panic(fmt.Sprintf("metrics: quantile sketch alpha %v out of range (0,1)", alpha))
	}
	gamma := (1 + alpha) / (1 - alpha)
	return &QuantileSketch{
		alpha:  alpha,
		gamma:  gamma,
		invLnG: 1 / math.Log(gamma),
		counts: make(map[int]uint64),
		min:    math.Inf(1),
		max:    math.Inf(-1),
	}
}

// RelativeAccuracy returns the alpha the sketch was constructed with.
func (s *QuantileSketch) RelativeAccuracy() float64 { return s.alpha }

// Add records one observation. x must be finite and non-negative —
// latencies, byte counts and rates all are, so a violation is a caller
// bug and panics per the impossible-error convention.
func (s *QuantileSketch) Add(x float64) { s.AddN(x, 1) }

// AddN records n identical observations in one step.
func (s *QuantileSketch) AddN(x float64, n uint64) {
	if math.IsNaN(x) || math.IsInf(x, 0) || x < 0 {
		panic(fmt.Sprintf("metrics: quantile sketch observation %v is not a finite non-negative value", x))
	}
	if n == 0 {
		return
	}
	if x < s.min {
		s.min = x
	}
	if x > s.max {
		s.max = x
	}
	s.total += n
	if x == 0 {
		s.zeros += n
		return
	}
	s.counts[s.bucket(x)] += n
}

// bucket maps a positive value to its log-bucket index.
func (s *QuantileSketch) bucket(x float64) int {
	return int(math.Ceil(math.Log(x) * s.invLnG))
}

// value returns the representative midpoint of bucket i, within alpha
// (relatively) of every value the bucket holds.
func (s *QuantileSketch) value(i int) float64 {
	// Bucket i covers (gamma^(i-1), gamma^i]; the point equidistant in
	// relative terms from both edges is 2*gamma^i / (gamma+1).
	return 2 * math.Pow(s.gamma, float64(i)) / (s.gamma + 1)
}

// Count returns the number of observations recorded.
func (s *QuantileSketch) Count() uint64 { return s.total }

// Min returns the smallest observation recorded (exact, not bucketed).
func (s *QuantileSketch) Min() (float64, error) {
	if s.total == 0 {
		return 0, ErrEmpty
	}
	return s.min, nil
}

// Max returns the largest observation recorded (exact, not bucketed).
func (s *QuantileSketch) Max() (float64, error) {
	if s.total == 0 {
		return 0, ErrEmpty
	}
	return s.max, nil
}

// Quantile returns an estimate of the q-quantile (0 <= q <= 1) of the
// inserted stream, within relative accuracy alpha of the exact value.
func (s *QuantileSketch) Quantile(q float64) (float64, error) {
	if s.total == 0 {
		return 0, ErrEmpty
	}
	if q < 0 || q > 1 {
		return 0, fmt.Errorf("metrics: quantile %v out of range [0,1]", q)
	}
	// The extremes are tracked exactly; report them exactly.
	if q == 0 {
		return s.min, nil
	}
	if q == 1 {
		return s.max, nil
	}
	// Rank of the target observation in the sorted stream (0-based,
	// nearest-rank like the exact estimator's anchor point).
	rank := uint64(q * float64(s.total-1))
	if rank < s.zeros {
		return 0, nil
	}
	keys := make([]int, 0, len(s.counts))
	for i := range s.counts {
		keys = append(keys, i)
	}
	sort.Ints(keys)
	cum := s.zeros
	for _, i := range keys {
		cum += s.counts[i]
		if rank < cum {
			v := s.value(i)
			// The true min/max are tracked exactly; never report outside them.
			if v < s.min {
				v = s.min
			}
			if v > s.max {
				v = s.max
			}
			return v, nil
		}
	}
	return s.max, nil
}

// Merge folds other into s. Both sketches must have been constructed with
// the same alpha so their bucket boundaries line up.
func (s *QuantileSketch) Merge(other *QuantileSketch) error {
	if other.alpha != s.alpha {
		return fmt.Errorf("metrics: cannot merge quantile sketches with alpha %v and %v", s.alpha, other.alpha)
	}
	for i, n := range other.counts {
		s.counts[i] += n // commutative: order of bucket addition cannot matter
	}
	s.zeros += other.zeros
	s.total += other.total
	if other.total > 0 {
		if other.min < s.min {
			s.min = other.min
		}
		if other.max > s.max {
			s.max = other.max
		}
	}
	return nil
}
