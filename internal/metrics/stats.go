// Package metrics provides the small statistics and reporting toolkit used
// across the experiment harness: summary statistics, sliding windows,
// correlation measures for validating the cost model, and plain-text table
// and series rendering in the style of the paper's figures.
package metrics

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

// ErrEmpty is returned by statistics that are undefined on empty input.
var ErrEmpty = errors.New("metrics: empty input")

// Mean returns the arithmetic mean of xs.
func Mean(xs []float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs)), nil
}

// Variance returns the population variance of xs.
func Variance(xs []float64) (float64, error) {
	m, err := Mean(xs)
	if err != nil {
		return 0, err
	}
	ss := 0.0
	for _, x := range xs {
		d := x - m
		ss += d * d
	}
	return ss / float64(len(xs)), nil
}

// StdDev returns the population standard deviation of xs.
func StdDev(xs []float64) (float64, error) {
	v, err := Variance(xs)
	if err != nil {
		return 0, err
	}
	return math.Sqrt(v), nil
}

// Median returns the median of xs. For even-length input it averages the
// two middle values.
func Median(xs []float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	n := len(s)
	if n%2 == 1 {
		return s[n/2], nil
	}
	return (s[n/2-1] + s[n/2]) / 2, nil
}

// Percentile returns the p-th percentile of xs (0 <= p <= 100) using linear
// interpolation between closest ranks.
func Percentile(xs []float64, p float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	if p < 0 || p > 100 {
		return 0, fmt.Errorf("metrics: percentile %v out of range [0,100]", p)
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	if len(s) == 1 {
		return s[0], nil
	}
	rank := p / 100 * float64(len(s)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return s[lo], nil
	}
	frac := rank - float64(lo)
	return s[lo]*(1-frac) + s[hi]*frac, nil
}

// MinMax returns the smallest and largest elements of xs.
func MinMax(xs []float64) (min, max float64, err error) {
	if len(xs) == 0 {
		return 0, 0, ErrEmpty
	}
	min, max = xs[0], xs[0]
	for _, x := range xs[1:] {
		if x < min {
			min = x
		}
		if x > max {
			max = x
		}
	}
	return min, max, nil
}

// Summary bundles the common descriptive statistics of a sample.
type Summary struct {
	N      int
	Mean   float64
	StdDev float64
	Min    float64
	Median float64
	P95    float64
	Max    float64
}

// Summarize computes a Summary of xs.
func Summarize(xs []float64) (Summary, error) {
	if len(xs) == 0 {
		return Summary{}, ErrEmpty
	}
	m, _ := Mean(xs)
	sd, _ := StdDev(xs)
	med, _ := Median(xs)
	p95, _ := Percentile(xs, 95)
	min, max, _ := MinMax(xs)
	return Summary{N: len(xs), Mean: m, StdDev: sd, Min: min, Median: med, P95: p95, Max: max}, nil
}

func (s Summary) String() string {
	return fmt.Sprintf("n=%d mean=%.3f sd=%.3f min=%.3f med=%.3f p95=%.3f max=%.3f",
		s.N, s.Mean, s.StdDev, s.Min, s.Median, s.P95, s.Max)
}

// tTable95 holds the two-sided 95% critical values of Student's t for
// 1..30 degrees of freedom; larger samples fall back to the normal 1.96.
var tTable95 = [...]float64{
	12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228,
	2.201, 2.179, 2.160, 2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086,
	2.080, 2.074, 2.069, 2.064, 2.060, 2.056, 2.052, 2.048, 2.045, 2.042,
}

// MeanCI95 returns the sample mean of xs and the half-width of its
// two-sided 95% confidence interval under Student's t (sample standard
// deviation, n-1 degrees of freedom). A single sample has an undefined
// interval; its half-width is reported as 0.
func MeanCI95(xs []float64) (mean, half float64, err error) {
	if len(xs) == 0 {
		return 0, 0, ErrEmpty
	}
	mean, _ = Mean(xs)
	n := len(xs)
	if n < 2 {
		return mean, 0, nil
	}
	ss := 0.0
	for _, x := range xs {
		d := x - mean
		ss += d * d
	}
	sd := math.Sqrt(ss / float64(n-1))
	t := 1.960
	if df := n - 1; df <= len(tTable95) {
		t = tTable95[df-1]
	}
	return mean, t * sd / math.Sqrt(float64(n)), nil
}

// Pearson returns the Pearson correlation coefficient between xs and ys.
func Pearson(xs, ys []float64) (float64, error) {
	if len(xs) != len(ys) {
		return 0, fmt.Errorf("metrics: length mismatch %d vs %d", len(xs), len(ys))
	}
	if len(xs) < 2 {
		return 0, errors.New("metrics: need at least 2 points for correlation")
	}
	mx, _ := Mean(xs)
	my, _ := Mean(ys)
	var sxy, sxx, syy float64
	for i := range xs {
		dx, dy := xs[i]-mx, ys[i]-my
		sxy += dx * dy
		sxx += dx * dx
		syy += dy * dy
	}
	if sxx == 0 || syy == 0 {
		return 0, errors.New("metrics: zero variance input")
	}
	return sxy / math.Sqrt(sxx*syy), nil
}

// ranks assigns fractional ranks (average of tied ranks) to xs.
func ranks(xs []float64) []float64 {
	type iv struct {
		i int
		v float64
	}
	s := make([]iv, len(xs))
	for i, v := range xs {
		s[i] = iv{i, v}
	}
	sort.Slice(s, func(a, b int) bool { return s[a].v < s[b].v })
	r := make([]float64, len(xs))
	for i := 0; i < len(s); {
		j := i
		for j < len(s) && s[j].v == s[i].v {
			j++
		}
		// average rank for the tie group [i, j)
		avg := float64(i+j-1)/2 + 1
		for k := i; k < j; k++ {
			r[s[k].i] = avg
		}
		i = j
	}
	return r
}

// Spearman returns the Spearman rank correlation between xs and ys. It is
// the statistic used in EXPERIMENTS.md to check that cost-model scores
// order replicas the same way measured transfer times do.
func Spearman(xs, ys []float64) (float64, error) {
	if len(xs) != len(ys) {
		return 0, fmt.Errorf("metrics: length mismatch %d vs %d", len(xs), len(ys))
	}
	if len(xs) < 2 {
		return 0, errors.New("metrics: need at least 2 points for correlation")
	}
	return Pearson(ranks(xs), ranks(ys))
}

// SameOrder reports whether sorting keys ascending induces the same
// permutation as sorting values ascending (i.e. the two metrics agree on
// the ranking). Ties in either slice are allowed to match any order within
// the tie group.
func SameOrder(keys, values []float64) (bool, error) {
	if len(keys) != len(values) {
		return false, fmt.Errorf("metrics: length mismatch %d vs %d", len(keys), len(values))
	}
	idx := make([]int, len(keys))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool { return keys[idx[a]] < keys[idx[b]] })
	for i := 1; i < len(idx); i++ {
		if values[idx[i]] < values[idx[i-1]] && keys[idx[i]] != keys[idx[i-1]] {
			return false, nil
		}
	}
	return true, nil
}

// Window is a fixed-capacity sliding window of float64 samples, used by the
// cost display (paper Fig. 5) for the adjustable time-scale average and by
// the NWS memory for bounded history.
type Window struct {
	buf   []float64
	size  int
	next  int
	count int
}

// NewWindow returns a window holding at most size samples. size must be
// positive.
func NewWindow(size int) (*Window, error) {
	if size <= 0 {
		return nil, fmt.Errorf("metrics: window size must be positive, got %d", size)
	}
	return &Window{buf: make([]float64, size), size: size}, nil
}

// Push appends a sample, evicting the oldest if the window is full.
func (w *Window) Push(x float64) {
	w.buf[w.next] = x
	w.next = (w.next + 1) % w.size
	if w.count < w.size {
		w.count++
	}
}

// Len returns the number of samples currently held.
func (w *Window) Len() int { return w.count }

// Values returns the samples oldest-first.
func (w *Window) Values() []float64 {
	out := make([]float64, 0, w.count)
	start := w.next - w.count
	if start < 0 {
		start += w.size
	}
	for i := 0; i < w.count; i++ {
		out = append(out, w.buf[(start+i)%w.size])
	}
	return out
}

// Mean returns the mean of the samples in the window.
func (w *Window) Mean() (float64, error) { return Mean(w.Values()) }

// Last returns the most recent sample.
func (w *Window) Last() (float64, error) {
	if w.count == 0 {
		return 0, ErrEmpty
	}
	i := w.next - 1
	if i < 0 {
		i += w.size
	}
	return w.buf[i], nil
}
