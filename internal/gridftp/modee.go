// Package gridftp implements the GridFTP protocol extensions on top of the
// ftp package, as the Globus project did on top of wu-ftpd (paper §2.1,
// §4.1-4.2): GSI authentication on the control channel, MODE E extended
// block mode whose 17-byte block headers (8 flag bits + 64-bit offset +
// 64-bit length) permit out-of-order arrival and therefore multiple
// parallel TCP data channels, partial file transfer (REST/ERET/ESTO),
// third-party transfer between two servers, striped data transfer (the
// paper's future work #1), and TCP buffer negotiation (SBUF).
package gridftp

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// MODE E descriptor flag bits (RFC 959 block mode extended by GridFTP).
const (
	// DescEOD marks the last block on one data channel.
	DescEOD byte = 0x08
	// DescEOF marks the block whose offset field carries the total number
	// of data channels the sender used; the receiver is done when it has
	// seen EOF and that many EODs.
	DescEOF byte = 0x40
)

// HeaderLen is the MODE E block header size: 1 flag byte + two 64-bit
// big-endian integers (offset, length).
const HeaderLen = 1 + 8 + 8

// MaxBlockLen bounds a single block's payload, protecting receivers from
// absurd allocations on corrupt headers.
const MaxBlockLen = 16 << 20

// DefaultBlockSize is the payload size senders use per block.
const DefaultBlockSize = 64 * 1024

// Block is one MODE E extended block.
type Block struct {
	Desc   byte
	Offset uint64
	// Payload is nil for pure control blocks (EOD/EOF with no data).
	Payload []byte
}

// EOF reports whether the block carries the channel-count marker.
func (b Block) EOF() bool { return b.Desc&DescEOF != 0 }

// EOD reports whether the block ends its data channel.
func (b Block) EOD() bool { return b.Desc&DescEOD != 0 }

// WriteBlock writes one extended block to w.
func WriteBlock(w io.Writer, b Block) error {
	if len(b.Payload) > MaxBlockLen {
		return fmt.Errorf("gridftp: block of %d bytes exceeds max %d", len(b.Payload), MaxBlockLen)
	}
	var hdr [HeaderLen]byte
	hdr[0] = b.Desc
	binary.BigEndian.PutUint64(hdr[1:9], b.Offset)
	binary.BigEndian.PutUint64(hdr[9:17], uint64(len(b.Payload)))
	if _, err := w.Write(hdr[:]); err != nil {
		return fmt.Errorf("gridftp: writing block header: %w", err)
	}
	if len(b.Payload) > 0 {
		if _, err := w.Write(b.Payload); err != nil {
			return fmt.Errorf("gridftp: writing block payload: %w", err)
		}
	}
	return nil
}

// ReadBlock reads one extended block from r. On a cleanly closed channel it
// returns io.EOF.
func ReadBlock(r io.Reader) (Block, error) {
	var hdr [HeaderLen]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		if err == io.EOF {
			return Block{}, io.EOF
		}
		return Block{}, fmt.Errorf("gridftp: reading block header: %w", err)
	}
	b := Block{Desc: hdr[0], Offset: binary.BigEndian.Uint64(hdr[1:9])}
	length := binary.BigEndian.Uint64(hdr[9:17])
	if length > MaxBlockLen {
		return Block{}, fmt.Errorf("gridftp: block length %d exceeds max %d", length, MaxBlockLen)
	}
	if length > 0 {
		b.Payload = make([]byte, length)
		if _, err := io.ReadFull(r, b.Payload); err != nil {
			return Block{}, fmt.Errorf("gridftp: reading block payload: %w", err)
		}
	}
	return b, nil
}

// SendBlocks transmits the byte range [offset, offset+length) of src over
// the given data channels in MODE E. Blocks of blockSize bytes are
// assigned round-robin to channels; every channel ends with EOD and the
// first channel also carries the EOF marker announcing the channel count.
// It is the shared sender for server RETR, client STOR and every striped
// variant.
func SendBlocks(conns []io.Writer, src io.ReaderAt, offset, length int64, blockSize int) error {
	if len(conns) == 0 {
		return errors.New("gridftp: no data channels")
	}
	if blockSize <= 0 {
		blockSize = DefaultBlockSize
	}
	if offset < 0 || length < 0 {
		return fmt.Errorf("gridftp: negative range (%d,%d)", offset, length)
	}
	nblocks := (length + int64(blockSize) - 1) / int64(blockSize)
	errs := make(chan error, len(conns))
	for ci := range conns {
		go func(ci int) {
			buf := make([]byte, blockSize)
			for bi := int64(ci); bi < nblocks; bi += int64(len(conns)) {
				at := offset + bi*int64(blockSize)
				n := int64(blockSize)
				if at+n > offset+length {
					n = offset + length - at
				}
				if _, err := src.ReadAt(buf[:n], at); err != nil && err != io.EOF {
					errs <- fmt.Errorf("gridftp: reading source at %d: %w", at, err)
					return
				}
				if err := WriteBlock(conns[ci], Block{Offset: uint64(at), Payload: buf[:n]}); err != nil {
					errs <- err
					return
				}
			}
			// Terminate this channel; channel 0 also announces the count.
			term := Block{Desc: DescEOD}
			if ci == 0 {
				term.Desc |= DescEOF
				term.Offset = uint64(len(conns))
			}
			errs <- WriteBlock(conns[ci], term)
		}(ci)
	}
	var first error
	for range conns {
		if err := <-errs; err != nil && first == nil {
			first = err
		}
	}
	return first
}

// ReceiveBlocks drains MODE E data channels into dst. It returns the total
// payload bytes written. Completion requires seeing the EOF marker and as
// many EODs as the marker announced; conns may be fewer than that only if
// more arrive via the accept callback (server STOR), so ReceiveBlocks
// handles exactly the channels it is given and reports whether the stream
// is complete.
func ReceiveBlocks(conns []io.Reader, dst io.WriterAt) (total int64, channels int, eods int, err error) {
	type result struct {
		n    int64
		eods int
		chn  int
		err  error
	}
	results := make(chan result, len(conns))
	for _, c := range conns {
		go func(c io.Reader) {
			var r result
			for {
				b, err := ReadBlock(c)
				if err == io.EOF {
					break
				}
				if err != nil {
					r.err = err
					break
				}
				if len(b.Payload) > 0 {
					if _, werr := dst.WriteAt(b.Payload, int64(b.Offset)); werr != nil {
						r.err = fmt.Errorf("gridftp: writing at %d: %w", b.Offset, werr)
						break
					}
					r.n += int64(len(b.Payload))
				}
				if b.EOF() {
					r.chn = int(b.Offset)
				}
				if b.EOD() {
					r.eods++
					break
				}
			}
			results <- r
		}(c)
	}
	for range conns {
		r := <-results
		total += r.n
		eods += r.eods
		if r.chn > 0 {
			channels = r.chn
		}
		if r.err != nil && err == nil {
			err = r.err
		}
	}
	return total, channels, eods, err
}
