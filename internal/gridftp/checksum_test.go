package gridftp

import (
	"bytes"
	"crypto/md5"
	"crypto/sha1"
	"encoding/hex"
	"hash/crc32"
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/hpclab/datagrid/internal/ftp"
)

func TestFileChecksumAlgorithms(t *testing.T) {
	st := ftp.NewMemStore()
	payload := []byte("the quick brown fox jumps over the lazy dog")
	if err := st.Put("/f", payload); err != nil {
		t.Fatal(err)
	}
	f, err := st.Open("/f")
	if err != nil {
		t.Fatal(err)
	}
	md := md5.Sum(payload)
	sh := sha1.Sum(payload)
	cr := crc32.ChecksumIEEE(payload)
	cases := map[string]string{
		AlgoMD5:   hex.EncodeToString(md[:]),
		AlgoSHA1:  hex.EncodeToString(sh[:]),
		AlgoCRC32: hex.EncodeToString([]byte{byte(cr >> 24), byte(cr >> 16), byte(cr >> 8), byte(cr)}),
	}
	for algo, want := range cases {
		got, err := FileChecksum(f, algo, 0, -1)
		if err != nil || got != want {
			t.Fatalf("%s = %q, %v; want %q", algo, got, err, want)
		}
	}
	if _, err := FileChecksum(f, "XTEA", 0, -1); err == nil {
		t.Fatal("unknown algorithm should be rejected")
	}
	if _, err := FileChecksum(f, AlgoMD5, -1, 2); err == nil {
		t.Fatal("negative offset should be rejected")
	}
	if _, err := FileChecksum(f, AlgoMD5, 0, int64(len(payload))+1); err == nil {
		t.Fatal("overlong region should be rejected")
	}
	// Region hash: bytes 4..9 = "quick".
	region, err := FileChecksum(f, AlgoMD5, 4, 5)
	if err != nil {
		t.Fatal(err)
	}
	wantRegion := md5.Sum([]byte("quick"))
	if region != hex.EncodeToString(wantRegion[:]) {
		t.Fatalf("region checksum = %q", region)
	}
}

func TestCKSMCommand(t *testing.T) {
	_, addr, payload := startServer(t, ServerConfig{})
	c := dialAndLogin(t, addr, ClientConfig{})
	sum, err := c.Checksum(AlgoMD5, 0, -1, "/data/big.bin")
	if err != nil {
		t.Fatal(err)
	}
	want := md5.Sum(payload)
	if sum != hex.EncodeToString(want[:]) {
		t.Fatalf("CKSM = %q, want %x", sum, want)
	}
	// Region checksum over the wire.
	sum, err = c.Checksum(AlgoSHA1, 100, 50, "/data/big.bin")
	if err != nil {
		t.Fatal(err)
	}
	wantR := sha1.Sum(payload[100:150])
	if sum != hex.EncodeToString(wantR[:]) {
		t.Fatalf("region CKSM = %q", sum)
	}
	if _, err := c.Checksum("NOPE", 0, -1, "/data/big.bin"); err == nil {
		t.Fatal("bad algorithm should fail")
	}
	if _, err := c.Checksum(AlgoMD5, 0, -1, "/missing"); err == nil {
		t.Fatal("missing file should fail")
	}
	code, _, err := c.Cmd("CKSM MD5 nonsense")
	if err != nil || code != 501 {
		t.Fatalf("malformed CKSM = %d, %v", code, err)
	}
}

func TestGetVerified(t *testing.T) {
	_, addr, payload := startServer(t, ServerConfig{})
	c := dialAndLogin(t, addr, ClientConfig{Parallelism: 4})
	got, err := c.GetVerified("/data/big.bin")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(payload) {
		t.Fatalf("verified get = %d bytes", len(got))
	}
}

// Property: server-side CKSM over any region equals a local hash of the
// same bytes.
func TestPropertyChecksumMatchesLocal(t *testing.T) {
	_, addr, payload := startServer(t, ServerConfig{})
	c := dialAndLogin(t, addr, ClientConfig{})
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		off := int64(rng.Intn(len(payload)))
		length := int64(rng.Intn(len(payload) - int(off)))
		sum, err := c.Checksum(AlgoMD5, off, length, "/data/big.bin")
		if err != nil {
			return false
		}
		want := md5.Sum(payload[off : off+length])
		return sum == hex.EncodeToString(want[:])
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestGetVerifiedDetectsTampering(t *testing.T) {
	srv, addr, payload := startServer(t, ServerConfig{})
	c := dialAndLogin(t, addr, ClientConfig{})
	// Take the checksum, then corrupt the stored file: the next verified
	// read must notice the digest no longer matches the payload it got.
	want, err := c.Checksum(AlgoMD5, 0, -1, "/data/big.bin")
	if err != nil {
		t.Fatal(err)
	}
	tampered := append([]byte(nil), payload...)
	tampered[12345] ^= 0xFF
	if err := srv.Store().(*ftp.MemStore).Put("/data/big.bin", tampered); err != nil {
		t.Fatal(err)
	}
	got, err := c.Checksum(AlgoMD5, 0, -1, "/data/big.bin")
	if err != nil {
		t.Fatal(err)
	}
	if got == want {
		t.Fatal("tampering must change the digest")
	}
	// GetVerified end-to-end: restore the original, then corrupt between
	// checksum and read is racy to stage over a real server, so instead
	// verify the success path still round-trips on the tampered file.
	data, err := c.GetVerified("/data/big.bin")
	if err != nil {
		t.Fatal(err)
	}
	if len(data) != len(tampered) {
		t.Fatal("verified read wrong length")
	}
}

func TestUseStreamModeSwitchBack(t *testing.T) {
	_, addr, payload := startServer(t, ServerConfig{})
	c := dialAndLogin(t, addr, ClientConfig{Parallelism: 4})
	if !c.ModeE() {
		t.Fatal("setup should have enabled MODE E")
	}
	if err := c.UseStreamMode(); err != nil {
		t.Fatal(err)
	}
	if c.ModeE() {
		t.Fatal("UseStreamMode should clear MODE E")
	}
	got, err := c.Get("/data/big.bin")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatal("stream-mode content mismatch after switch back")
	}
}
