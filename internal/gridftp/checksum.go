package gridftp

import (
	"crypto/md5"
	"crypto/sha1"
	"encoding/hex"
	"fmt"
	"hash"
	"hash/crc32"
	"io"
	"strconv"
	"strings"

	"github.com/hpclab/datagrid/internal/ftp"
)

// Checksum algorithms supported by the CKSM command (the GridFTP v2
// checksum feature, used for end-to-end transfer verification).
const (
	AlgoMD5   = "MD5"
	AlgoSHA1  = "SHA1"
	AlgoCRC32 = "CRC32"
)

func newHasher(algo string) (hash.Hash, error) {
	switch strings.ToUpper(algo) {
	case AlgoMD5:
		return md5.New(), nil
	case AlgoSHA1:
		return sha1.New(), nil
	case AlgoCRC32:
		return crc32.NewIEEE(), nil
	default:
		return nil, fmt.Errorf("gridftp: unsupported checksum algorithm %q", algo)
	}
}

// FileChecksum computes the named digest of [offset, offset+length) of f.
// length < 0 means "to end of file".
func FileChecksum(f ftp.File, algo string, offset, length int64) (string, error) {
	h, err := newHasher(algo)
	if err != nil {
		return "", err
	}
	size := f.Size()
	if offset < 0 || offset > size {
		return "", fmt.Errorf("gridftp: checksum offset %d outside file of %d", offset, size)
	}
	if length < 0 {
		length = size - offset
	}
	if offset+length > size {
		return "", fmt.Errorf("gridftp: checksum region (%d,%d) beyond size %d", offset, length, size)
	}
	if _, err := io.Copy(h, io.NewSectionReader(f, offset, length)); err != nil {
		return "", fmt.Errorf("gridftp: hashing: %w", err)
	}
	return hex.EncodeToString(h.Sum(nil)), nil
}

// handleCKSM implements "CKSM <algo> <offset> <length> <path>"; length -1
// hashes to end of file. Reply: "213 <hex digest>".
func (s *Server) handleCKSM(sess *ftp.Session, arg string) {
	if !sess.RequireAuth() {
		return
	}
	fields := strings.SplitN(arg, " ", 4)
	if len(fields) != 4 {
		sess.Reply(501, "usage: CKSM <algo> <offset> <length> <path>")
		return
	}
	offset, err1 := strconv.ParseInt(fields[1], 10, 64)
	length, err2 := strconv.ParseInt(fields[2], 10, 64)
	if err1 != nil || err2 != nil {
		sess.Reply(501, "bad offset/length")
		return
	}
	f, err := sess.Store().Open(sess.ResolvePath(fields[3]))
	if err != nil {
		sess.Reply(550, err.Error())
		return
	}
	sum, err := FileChecksum(f, fields[0], offset, length)
	if err != nil {
		sess.Reply(504, err.Error())
		return
	}
	sess.Reply(213, sum)
}

// Checksum asks the server for a digest of [offset, offset+length) of
// path; length < 0 hashes to end of file.
func (c *Client) Checksum(algo string, offset, length int64, path string) (string, error) {
	msg, err := c.Expect(213, "CKSM %s %d %d %s", strings.ToUpper(algo), offset, length, path)
	if err != nil {
		return "", err
	}
	return strings.TrimSpace(msg), nil
}

// GetVerified downloads a file and verifies it against the server's MD5
// digest, failing on any corruption — the integrity check layered on the
// parallel transfer path.
func (c *Client) GetVerified(path string) ([]byte, error) {
	want, err := c.Checksum(AlgoMD5, 0, -1, path)
	if err != nil {
		return nil, err
	}
	data, err := c.Get(path)
	if err != nil {
		return nil, err
	}
	got := md5.Sum(data)
	if hex.EncodeToString(got[:]) != want {
		return nil, fmt.Errorf("gridftp: checksum mismatch for %s: got %x, server says %s", path, got, want)
	}
	return data, nil
}
