package gridftp

import (
	"errors"
	"fmt"
	"io"
	"net"
	"strings"
	"time"

	"github.com/hpclab/datagrid/internal/ftp"
	"github.com/hpclab/datagrid/internal/gsi"
)

// ClientConfig tunes a GridFTP client session, mirroring globus-url-copy's
// options.
type ClientConfig struct {
	// Timeout bounds each control and data operation; default 10s.
	Timeout time.Duration
	// Parallelism is the number of parallel TCP data channels (the -p
	// option). 0 or 1 means one channel. Values above 1 require MODE E.
	Parallelism int
	// BlockSize is the MODE E block payload size; default 64 KiB.
	BlockSize int
	// TCPBuffer, when non-zero, is negotiated with SBUF and applied to
	// data sockets (the -tcp-bs option).
	TCPBuffer int
}

// Client is a GridFTP control-channel client.
type Client struct {
	*ftp.Client
	cfg   ClientConfig
	modeE bool
}

// Dial connects to a GridFTP (or plain FTP) server.
func Dial(addr string, cfg ClientConfig) (*Client, error) {
	if cfg.Parallelism < 0 {
		return nil, fmt.Errorf("gridftp: negative parallelism %d", cfg.Parallelism)
	}
	if cfg.BlockSize < 0 || cfg.TCPBuffer < 0 {
		return nil, errors.New("gridftp: negative client option")
	}
	if cfg.Parallelism == 0 {
		cfg.Parallelism = 1
	}
	if cfg.BlockSize == 0 {
		cfg.BlockSize = DefaultBlockSize
	}
	base, err := ftp.Dial(addr, cfg.Timeout)
	if err != nil {
		return nil, err
	}
	return &Client{Client: base, cfg: cfg}, nil
}

// AuthGSI authenticates the control channel with the GSI handshake and
// returns the server's subject.
func (c *Client) AuthGSI(a *gsi.Authenticator) (string, error) {
	if a == nil {
		return "", errors.New("gridftp: nil authenticator")
	}
	if _, err := c.Expect(334, "AUTH GSI"); err != nil {
		return "", err
	}
	rw := struct {
		io.Reader
		io.Writer
	}{c.Reader(), c.Conn()}
	peer, err := a.Client(rw)
	if err != nil {
		return "", err
	}
	if _, err := c.ExpectFinal(235); err != nil {
		return "", err
	}
	return peer, nil
}

// Setup performs the standard post-login negotiation: binary type, MODE E
// when parallelism or explicit extended mode is wanted, OPTS parallelism
// and SBUF. Call after Login/AuthGSI.
func (c *Client) Setup() error {
	if err := c.TypeImage(); err != nil {
		return err
	}
	if c.cfg.Parallelism > 1 {
		if err := c.UseModeE(); err != nil {
			return err
		}
	}
	if c.cfg.TCPBuffer > 0 {
		if _, err := c.Expect(200, "SBUF %d", c.cfg.TCPBuffer); err != nil {
			return err
		}
	}
	return nil
}

// UseModeE switches the session to extended block mode.
func (c *Client) UseModeE() error {
	if _, err := c.Expect(200, "MODE E"); err != nil {
		return err
	}
	c.modeE = true
	if _, err := c.Expect(200, "OPTS RETR Parallelism=%d,%d,%d;", c.cfg.Parallelism, c.cfg.Parallelism, c.cfg.Parallelism); err != nil {
		return err
	}
	return nil
}

// UseStreamMode switches back to stream mode with a single channel.
func (c *Client) UseStreamMode() error {
	if _, err := c.Expect(200, "MODE S"); err != nil {
		return err
	}
	c.modeE = false
	return nil
}

// ModeE reports whether the session is in extended block mode.
func (c *Client) ModeE() bool { return c.modeE }

// Parallelism returns the configured channel count.
func (c *Client) Parallelism() int { return c.cfg.Parallelism }

// dialDataChannels opens n connections to the server's passive address.
func (c *Client) dialDataChannels(addr string, n int) ([]net.Conn, error) {
	conns := make([]net.Conn, 0, n)
	for i := 0; i < n; i++ {
		conn, err := net.DialTimeout("tcp", addr, c.Timeout())
		if err != nil {
			closeAll(conns)
			return nil, fmt.Errorf("gridftp: dialing data channel %d: %w", i, err)
		}
		if c.cfg.TCPBuffer > 0 {
			if tc, ok := conn.(*net.TCPConn); ok {
				_ = tc.SetReadBuffer(c.cfg.TCPBuffer)
				_ = tc.SetWriteBuffer(c.cfg.TCPBuffer)
			}
		}
		conns = append(conns, conn)
	}
	return conns, nil
}

// byteWriterAt adapts a fixed buffer to io.WriterAt with bounds checking.
type byteWriterAt struct {
	buf []byte
}

func (b byteWriterAt) WriteAt(p []byte, off int64) (int, error) {
	if off < 0 || off+int64(len(p)) > int64(len(b.buf)) {
		return 0, fmt.Errorf("gridftp: write (%d,%d) outside buffer of %d", off, len(p), len(b.buf))
	}
	copy(b.buf[off:], p)
	return len(p), nil
}

// Get downloads a whole file, using the session's mode and parallelism.
func (c *Client) Get(path string) ([]byte, error) {
	size, err := c.Size(path)
	if err != nil {
		return nil, err
	}
	if !c.modeE {
		buf := make([]byte, 0, size)
		w := &appendWriter{buf: &buf}
		if _, err := c.Retr(path, w); err != nil {
			return nil, err
		}
		return buf, nil
	}
	buf := make([]byte, size)
	if err := c.retrModeE(fmt.Sprintf("RETR %s", path), buf); err != nil {
		return nil, err
	}
	return buf, nil
}

// GetPartial downloads the byte range [offset, offset+length) with ERET —
// GridFTP's partial file transfer.
func (c *Client) GetPartial(path string, offset, length int64) ([]byte, error) {
	if offset < 0 || length < 0 {
		return nil, errors.New("gridftp: negative partial range")
	}
	if !c.modeE {
		var sb strings.Builder
		addr, err := c.Passive()
		if err != nil {
			return nil, err
		}
		conns, err := c.dialDataChannels(addr, 1)
		if err != nil {
			return nil, err
		}
		defer closeAll(conns)
		if _, err := c.Expect(150, "ERET P %d %d %s", offset, length, path); err != nil {
			return nil, err
		}
		if _, err := io.Copy(&sb, conns[0]); err != nil {
			return nil, err
		}
		if _, err := c.ExpectFinal(226); err != nil {
			return nil, err
		}
		return []byte(sb.String()), nil
	}
	buf := make([]byte, length)
	// MODE E blocks carry absolute offsets; receive into a window shifted
	// back by the region start.
	if err := c.retrModeEInto(fmt.Sprintf("ERET P %d %d %s", offset, length, path), shiftedWriterAt{byteWriterAt{buf}, -offset}); err != nil {
		return nil, err
	}
	return buf, nil
}

type shiftedWriterAt struct {
	w     io.WriterAt
	shift int64
}

func (s shiftedWriterAt) WriteAt(p []byte, off int64) (int, error) {
	return s.w.WriteAt(p, off+s.shift)
}

type appendWriter struct {
	buf *[]byte
}

func (a *appendWriter) Write(p []byte) (int, error) {
	*a.buf = append(*a.buf, p...)
	return len(p), nil
}

func (c *Client) retrModeE(cmd string, buf []byte) error {
	return c.retrModeEInto(cmd, byteWriterAt{buf})
}

func (c *Client) retrModeEInto(cmd string, dst io.WriterAt) error {
	addr, err := c.Passive()
	if err != nil {
		return err
	}
	conns, err := c.dialDataChannels(addr, c.cfg.Parallelism)
	if err != nil {
		return err
	}
	defer closeAll(conns)
	if _, err := c.Expect(150, "%s", cmd); err != nil {
		return err
	}
	rs := make([]io.Reader, len(conns))
	for i, cn := range conns {
		rs[i] = cn
	}
	_, announced, eods, err := ReceiveBlocks(rs, dst)
	if err != nil {
		return err
	}
	if announced > 0 && eods < announced {
		return fmt.Errorf("gridftp: incomplete transfer: %d EODs of %d channels", eods, announced)
	}
	if _, err := c.ExpectFinal(226); err != nil {
		return err
	}
	return nil
}

// Put uploads data to path, using the session's mode and parallelism.
func (c *Client) Put(path string, data []byte) error {
	if !c.modeE {
		_, err := c.Stor(path, strings.NewReader(string(data)))
		return err
	}
	addr, err := c.Passive()
	if err != nil {
		return err
	}
	conns, err := c.dialDataChannels(addr, c.cfg.Parallelism)
	if err != nil {
		return err
	}
	defer closeAll(conns)
	if _, err := c.Expect(200, "OPTS STOR Parallelism=%d,%d,%d;", c.cfg.Parallelism, c.cfg.Parallelism, c.cfg.Parallelism); err != nil {
		return err
	}
	if _, err := c.Expect(150, "STOR %s", path); err != nil {
		return err
	}
	ws := make([]io.Writer, len(conns))
	for i, cn := range conns {
		ws[i] = cn
	}
	if err := SendBlocks(ws, bytesReaderAt(data), 0, int64(len(data)), c.cfg.BlockSize); err != nil {
		return err
	}
	closeAll(conns) // signal EOF on every channel
	if _, err := c.ExpectFinal(226); err != nil {
		return err
	}
	return nil
}

type bytesReaderAt []byte

func (b bytesReaderAt) ReadAt(p []byte, off int64) (int, error) {
	if off < 0 || off > int64(len(b)) {
		return 0, io.EOF
	}
	n := copy(p, b[off:])
	if n < len(p) {
		return n, io.EOF
	}
	return n, nil
}

// GetStriped downloads a file over the server's striped data movers
// (SPAS) — the paper's future-work feature #1. It requires MODE E.
func (c *Client) GetStriped(path string) ([]byte, error) {
	if !c.modeE {
		return nil, errors.New("gridftp: striped transfer requires MODE E")
	}
	size, err := c.Size(path)
	if err != nil {
		return nil, err
	}
	code, msg, err := c.Cmd("SPAS")
	if err != nil {
		return nil, err
	}
	if code != 229 {
		return nil, fmt.Errorf("gridftp: SPAS: %d %s", code, msg)
	}
	addrs, err := parseSpasReply(msg)
	if err != nil {
		return nil, err
	}
	conns := make([]net.Conn, 0, len(addrs))
	for _, a := range addrs {
		conn, err := net.DialTimeout("tcp", a, c.Timeout())
		if err != nil {
			closeAll(conns)
			return nil, fmt.Errorf("gridftp: dialing stripe %s: %w", a, err)
		}
		conns = append(conns, conn)
	}
	defer closeAll(conns)
	if _, err := c.Expect(150, "RETR %s", path); err != nil {
		return nil, err
	}
	buf := make([]byte, size)
	rs := make([]io.Reader, len(conns))
	for i, cn := range conns {
		rs[i] = cn
	}
	_, announced, eods, err := ReceiveBlocks(rs, byteWriterAt{buf})
	if err != nil {
		return nil, err
	}
	if announced > 0 && eods < announced {
		return nil, fmt.Errorf("gridftp: incomplete striped transfer: %d of %d EODs", eods, announced)
	}
	if _, err := c.ExpectFinal(226); err != nil {
		return nil, err
	}
	return buf, nil
}

// parseSpasReply extracts dialable addresses from the multiline 229 reply.
func parseSpasReply(msg string) ([]string, error) {
	var out []string
	for _, line := range strings.Split(msg, "\n") {
		line = strings.TrimSpace(line)
		if strings.Count(line, ",") == 5 {
			addr, err := ftp.ParsePasvAddr(line)
			if err != nil {
				return nil, err
			}
			out = append(out, addr)
		}
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("gridftp: no stripe addresses in SPAS reply %q", msg)
	}
	return out, nil
}

// ThirdPartyStriped moves srcPath on the src server to dstPath on the dst
// server through the source's striped data movers: the client asks the
// source for its stripe listeners (SPAS), hands them to the destination
// (SPOR), and the destination's movers pull the file in parallel — the
// full combination of the paper's future-work striping with third-party
// transfer. Both sessions must be in MODE E.
func ThirdPartyStriped(src *Client, srcPath string, dst *Client, dstPath string) error {
	if src == nil || dst == nil {
		return errors.New("gridftp: third-party needs two clients")
	}
	if !src.modeE || !dst.modeE {
		return errors.New("gridftp: striped third-party requires MODE E on both endpoints")
	}
	code, msg, err := src.Cmd("SPAS")
	if err != nil {
		return err
	}
	if code != 229 {
		return fmt.Errorf("gridftp: SPAS: %d %s", code, msg)
	}
	addrs, err := parseSpasReply(msg)
	if err != nil {
		return err
	}
	specs := make([]string, 0, len(addrs))
	for _, a := range addrs {
		spec, err := ftp.FormatAddrSpec(a)
		if err != nil {
			return err
		}
		specs = append(specs, spec)
	}
	if _, err := dst.Expect(200, "SPOR %s", strings.Join(specs, " ")); err != nil {
		return err
	}
	if _, err := dst.Expect(150, "STOR %s", dstPath); err != nil {
		return err
	}
	if _, err := src.Expect(150, "RETR %s", srcPath); err != nil {
		return err
	}
	if _, err := src.ExpectFinal(226); err != nil {
		return err
	}
	if _, err := dst.ExpectFinal(226); err != nil {
		return err
	}
	return nil
}

// ThirdParty moves srcPath on the src server directly to dstPath on the
// dst server, with the client orchestrating both control channels and no
// data flowing through the client — GridFTP third-party transfer. Both
// sessions must be in the same mode; in MODE E the configured parallelism
// applies (src accepts what dst dials).
func ThirdParty(src *Client, srcPath string, dst *Client, dstPath string) error {
	if src == nil || dst == nil {
		return errors.New("gridftp: third-party needs two clients")
	}
	if src.modeE != dst.modeE {
		return errors.New("gridftp: third-party endpoints must use the same mode")
	}
	srcAddr, err := src.Passive()
	if err != nil {
		return err
	}
	spec, err := ftp.FormatAddrSpec(srcAddr)
	if err != nil {
		return err
	}
	if _, err := dst.Expect(200, "PORT %s", spec); err != nil {
		return err
	}
	if src.modeE {
		p := src.cfg.Parallelism
		if dp := dst.cfg.Parallelism; dp < p {
			p = dp
		}
		if _, err := src.Expect(200, "OPTS RETR Parallelism=%d;", p); err != nil {
			return err
		}
		if _, err := dst.Expect(200, "OPTS STOR Parallelism=%d;", p); err != nil {
			return err
		}
	}
	// Destination first: its 150 means it is dialing the source listener.
	if _, err := dst.Expect(150, "STOR %s", dstPath); err != nil {
		return err
	}
	if _, err := src.Expect(150, "RETR %s", srcPath); err != nil {
		return err
	}
	if _, err := src.ExpectFinal(226); err != nil {
		return err
	}
	if _, err := dst.ExpectFinal(226); err != nil {
		return err
	}
	return nil
}
