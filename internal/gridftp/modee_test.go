package gridftp

import (
	"bytes"
	"io"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestBlockRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	in := Block{Desc: DescEOD | DescEOF, Offset: 0xDEADBEEF, Payload: []byte("grid data")}
	if err := WriteBlock(&buf, in); err != nil {
		t.Fatal(err)
	}
	out, err := ReadBlock(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if out.Desc != in.Desc || out.Offset != in.Offset || !bytes.Equal(out.Payload, in.Payload) {
		t.Fatalf("round trip = %+v, want %+v", out, in)
	}
	if !out.EOD() || !out.EOF() {
		t.Fatal("flag accessors wrong")
	}
}

func TestBlockHeaderLayout(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteBlock(&buf, Block{Desc: DescEOD, Offset: 1, Payload: []byte{0xFF}}); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	if len(raw) != HeaderLen+1 {
		t.Fatalf("wire length = %d, want %d", len(raw), HeaderLen+1)
	}
	// 8 bits of flags, 64-bit offset, 64-bit length — the paper's MODE E
	// block layout (§4.2).
	if raw[0] != DescEOD {
		t.Fatalf("flag byte = %x", raw[0])
	}
	if raw[8] != 1 { // big-endian offset 1 ends at byte 8
		t.Fatalf("offset bytes = %v", raw[1:9])
	}
	if raw[16] != 1 { // big-endian length 1 ends at byte 16
		t.Fatalf("length bytes = %v", raw[9:17])
	}
}

func TestReadBlockEOF(t *testing.T) {
	if _, err := ReadBlock(bytes.NewReader(nil)); err != io.EOF {
		t.Fatalf("empty reader err = %v, want io.EOF", err)
	}
	// Truncated header is an error, not clean EOF.
	if _, err := ReadBlock(bytes.NewReader([]byte{1, 2, 3})); err == io.EOF || err == nil {
		t.Fatalf("truncated header err = %v", err)
	}
}

func TestReadBlockLengthGuard(t *testing.T) {
	var buf bytes.Buffer
	hdr := make([]byte, HeaderLen)
	hdr[9] = 0xFF // absurd length
	buf.Write(hdr)
	if _, err := ReadBlock(&buf); err == nil {
		t.Fatal("oversized length must be rejected")
	}
	if err := WriteBlock(io.Discard, Block{Payload: make([]byte, MaxBlockLen+1)}); err == nil {
		t.Fatal("oversized write must be rejected")
	}
}

func TestSendReceiveSingleChannel(t *testing.T) {
	payload := bytes.Repeat([]byte("0123456789"), 1000)
	pr, pw := io.Pipe()
	go func() {
		if err := SendBlocks([]io.Writer{pw}, bytesReaderAt(payload), 0, int64(len(payload)), 512); err != nil {
			t.Error(err)
		}
		pw.Close()
	}()
	out := make([]byte, len(payload))
	total, channels, eods, err := ReceiveBlocks([]io.Reader{pr}, byteWriterAt{out})
	if err != nil {
		t.Fatal(err)
	}
	if total != int64(len(payload)) || channels != 1 || eods != 1 {
		t.Fatalf("total=%d channels=%d eods=%d", total, channels, eods)
	}
	if !bytes.Equal(out, payload) {
		t.Fatal("payload mismatch")
	}
}

func TestSendReceiveParallelChannels(t *testing.T) {
	payload := make([]byte, 1<<20)
	rng := rand.New(rand.NewSource(7))
	rng.Read(payload)
	const nch = 4
	rs := make([]io.Reader, nch)
	ws := make([]io.Writer, nch)
	for i := 0; i < nch; i++ {
		pr, pw := io.Pipe()
		rs[i], ws[i] = pr, pw
	}
	go func() {
		if err := SendBlocks(ws, bytesReaderAt(payload), 0, int64(len(payload)), 8192); err != nil {
			t.Error(err)
		}
		for _, w := range ws {
			w.(*io.PipeWriter).Close()
		}
	}()
	out := make([]byte, len(payload))
	total, channels, eods, err := ReceiveBlocks(rs, byteWriterAt{out})
	if err != nil {
		t.Fatal(err)
	}
	if total != int64(len(payload)) || channels != nch || eods != nch {
		t.Fatalf("total=%d channels=%d eods=%d", total, channels, eods)
	}
	if !bytes.Equal(out, payload) {
		t.Fatal("parallel payload mismatch")
	}
}

func TestSendBlocksRange(t *testing.T) {
	payload := []byte("0123456789abcdef")
	var buf bytes.Buffer
	if err := SendBlocks([]io.Writer{&buf}, bytesReaderAt(payload), 4, 8, 3); err != nil {
		t.Fatal(err)
	}
	out := make([]byte, len(payload))
	_, _, _, err := ReceiveBlocks([]io.Reader{bytes.NewReader(buf.Bytes())}, byteWriterAt{out})
	if err != nil {
		t.Fatal(err)
	}
	if string(out[4:12]) != "456789ab" {
		t.Fatalf("range content = %q", out[4:12])
	}
}

func TestSendBlocksValidation(t *testing.T) {
	if err := SendBlocks(nil, bytesReaderAt(nil), 0, 0, 0); err == nil {
		t.Fatal("no channels should fail")
	}
	if err := SendBlocks([]io.Writer{io.Discard}, bytesReaderAt(nil), -1, 0, 0); err == nil {
		t.Fatal("negative offset should fail")
	}
	if err := SendBlocks([]io.Writer{io.Discard}, bytesReaderAt(nil), 0, -1, 0); err == nil {
		t.Fatal("negative length should fail")
	}
}

func TestSendBlocksZeroLength(t *testing.T) {
	var buf bytes.Buffer
	if err := SendBlocks([]io.Writer{&buf}, bytesReaderAt(nil), 0, 0, 0); err != nil {
		t.Fatal(err)
	}
	total, channels, eods, err := ReceiveBlocks([]io.Reader{bytes.NewReader(buf.Bytes())}, byteWriterAt{nil})
	if err != nil || total != 0 || channels != 1 || eods != 1 {
		t.Fatalf("zero-length: total=%d ch=%d eods=%d err=%v", total, channels, eods, err)
	}
}

// Property: any payload split across any channel count and block size
// reassembles exactly.
func TestPropertyModeERoundTrip(t *testing.T) {
	f := func(seed int64, sizeRaw uint16, nchRaw, bsRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		size := int(sizeRaw)%20000 + 1
		nch := int(nchRaw)%8 + 1
		bs := int(bsRaw)%1000 + 1
		payload := make([]byte, size)
		rng.Read(payload)
		rs := make([]io.Reader, nch)
		ws := make([]io.Writer, nch)
		for i := 0; i < nch; i++ {
			pr, pw := io.Pipe()
			rs[i], ws[i] = pr, pw
		}
		go func() {
			_ = SendBlocks(ws, bytesReaderAt(payload), 0, int64(size), bs)
			for _, w := range ws {
				w.(*io.PipeWriter).Close()
			}
		}()
		out := make([]byte, size)
		total, channels, eods, err := ReceiveBlocks(rs, byteWriterAt{out})
		return err == nil && total == int64(size) && channels == nch && eods == nch &&
			bytes.Equal(out, payload)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
