package gridftp

import (
	"errors"
	"fmt"
	"io"
	"net"
	"strconv"
	"strings"
	"time"

	"github.com/hpclab/datagrid/internal/ftp"
	"github.com/hpclab/datagrid/internal/gsi"
)

// Session Extra keys used by the extension handlers.
const (
	extraParallelism = "gridftp.parallelism"
	extraSpas        = "gridftp.spas"
	extraSpor        = "gridftp.spor"
	extraSBuf        = "gridftp.sbuf"
	extraGSIPeer     = "gridftp.gsiPeer"
)

// ServerConfig configures a GridFTP server.
type ServerConfig struct {
	// Store is the filesystem served. Required.
	Store ftp.Store
	// GSI, when set, enables the AUTH GSI command; with RequireGSI the
	// server refuses USER/PASS logins.
	GSI *gsi.Authenticator
	// RequireGSI forces GSI authentication.
	RequireGSI bool
	// Stripes is the number of data movers SPAS exposes; default 4.
	Stripes int
	// DataTimeout bounds data-connection setup; default 10s.
	DataTimeout time.Duration
	// TransferLog receives wu-ftpd xferlog lines for completed transfers
	// (stream and MODE E alike).
	TransferLog io.Writer
	// Clock supplies transfer timing and xferlog timestamps; defaults to
	// time.Now. Override in tests or simulations for determinism.
	Clock func() time.Time
}

// Server is a GridFTP server: an ftp.Server with the Grid extensions
// installed.
type Server struct {
	*ftp.Server
	cfg ServerConfig
}

// NewServer builds a GridFTP server.
func NewServer(cfg ServerConfig) (*Server, error) {
	if cfg.Stripes == 0 {
		cfg.Stripes = 4
	}
	if cfg.Stripes < 0 {
		return nil, fmt.Errorf("gridftp: negative stripe count %d", cfg.Stripes)
	}
	if cfg.DataTimeout == 0 {
		cfg.DataTimeout = 10 * time.Second
	}
	var auth func(user, pass string) bool
	if cfg.RequireGSI {
		if cfg.GSI == nil {
			return nil, errors.New("gridftp: RequireGSI needs a GSI authenticator")
		}
		auth = func(string, string) bool { return false }
	}
	base, err := ftp.NewServer(ftp.ServerConfig{
		Store:       cfg.Store,
		Auth:        auth,
		Welcome:     "datagrid GridFTP server ready",
		DataTimeout: cfg.DataTimeout,
		TransferLog: cfg.TransferLog,
		Clock:       cfg.Clock,
	})
	if err != nil {
		return nil, err
	}
	s := &Server{Server: base, cfg: cfg}
	base.Handle("MODE", s.handleMODE)
	base.Handle("AUTH", s.handleAUTH)
	base.Handle("OPTS", s.handleOPTS)
	base.Handle("SBUF", s.handleSBUF)
	base.Handle("RETR", s.handleRETR)
	base.Handle("STOR", s.handleSTOR)
	base.Handle("ERET", s.handleERET)
	base.Handle("ESTO", s.handleESTO)
	base.Handle("SPAS", s.handleSPAS)
	base.Handle("SPOR", s.handleSPOR)
	base.Handle("CKSM", s.handleCKSM)
	base.AddFeature("CKSM MD5,SHA1,CRC32")
	base.AddFeature("AUTH GSI")
	base.AddFeature("MODE E")
	base.AddFeature("PARALLEL")
	base.AddFeature("ERET")
	base.AddFeature("ESTO")
	base.AddFeature("SBUF")
	base.AddFeature("SPAS")
	base.AddFeature("SPOR")
	base.OnSessionEnd(func(sess *ftp.Session) {
		if lns, ok := sess.Extra[extraSpas].([]net.Listener); ok {
			for _, ln := range lns {
				_ = ln.Close() // session is gone; nowhere to report
			}
		}
	})
	return s, nil
}

func (s *Server) handleMODE(sess *ftp.Session, arg string) {
	switch strings.ToUpper(arg) {
	case "S":
		sess.SetMode('S')
		sess.Reply(200, "mode set to S")
	case "E":
		sess.SetMode('E')
		sess.Reply(200, "mode set to E (extended block)")
	default:
		sess.Reply(504, "only modes S and E supported")
	}
}

func (s *Server) handleAUTH(sess *ftp.Session, arg string) {
	if !strings.EqualFold(arg, "GSI") && !strings.EqualFold(arg, "GSSAPI") {
		sess.Reply(504, "only AUTH GSI supported")
		return
	}
	if s.cfg.GSI == nil {
		sess.Reply(534, "GSI not configured on this server")
		return
	}
	sess.Reply(334, "proceed with GSI handshake")
	rw := struct {
		io.Reader
		io.Writer
	}{sess.Reader(), sess.Conn()}
	peer, err := s.cfg.GSI.Server(rw)
	if err != nil {
		sess.Reply(535, "GSI authentication failed")
		return
	}
	sess.Extra[extraGSIPeer] = peer
	sess.SetAuthed(peer)
	sess.Reply(235, "GSI authentication successful for "+peer)
}

// parseParallelism extracts the first integer of "Parallelism=a,b,c;".
func parseParallelism(arg string) (int, error) {
	i := strings.Index(strings.ToLower(arg), "parallelism=")
	if i < 0 {
		return 0, fmt.Errorf("gridftp: no Parallelism option in %q", arg)
	}
	rest := arg[i+len("parallelism="):]
	end := strings.IndexAny(rest, ",;")
	if end < 0 {
		end = len(rest)
	}
	n, err := strconv.Atoi(strings.TrimSpace(rest[:end]))
	if err != nil || n < 1 {
		return 0, fmt.Errorf("gridftp: bad parallelism %q", rest)
	}
	return n, nil
}

func (s *Server) handleOPTS(sess *ftp.Session, arg string) {
	verb, rest, _ := strings.Cut(arg, " ")
	switch strings.ToUpper(verb) {
	case "RETR", "STOR":
		n, err := parseParallelism(rest)
		if err != nil {
			sess.Reply(501, err.Error())
			return
		}
		sess.Extra[extraParallelism] = n
		sess.Reply(200, fmt.Sprintf("parallelism set to %d", n))
	default:
		sess.Reply(501, "OPTS target not supported")
	}
}

func (s *Server) handleSBUF(sess *ftp.Session, arg string) {
	n, err := strconv.Atoi(strings.TrimSpace(arg))
	if err != nil || n <= 0 {
		sess.Reply(501, "bad buffer size")
		return
	}
	sess.Extra[extraSBuf] = n
	sess.Reply(200, fmt.Sprintf("TCP buffer set to %d", n))
}

func (s *Server) parallelism(sess *ftp.Session) int {
	if n, ok := sess.Extra[extraParallelism].(int); ok && n > 0 {
		return n
	}
	return 1
}

func applySBuf(sess *ftp.Session, conns []net.Conn) {
	n, ok := sess.Extra[extraSBuf].(int)
	if !ok {
		return
	}
	for _, c := range conns {
		if tc, ok := c.(*net.TCPConn); ok {
			_ = tc.SetReadBuffer(n)
			_ = tc.SetWriteBuffer(n)
		}
	}
}

// dataChannels establishes the session's MODE E data connections:
// striped listeners (SPAS) accept one each, a passive listener accepts
// `parallelism` connections, striped addresses (SPOR) are dialed once
// each, and an active-mode PORT address is dialed `parallelism` times.
func (s *Server) dataChannels(sess *ftp.Session) ([]net.Conn, error) {
	if lns, ok := sess.Extra[extraSpas].([]net.Listener); ok && len(lns) > 0 {
		conns := make([]net.Conn, 0, len(lns))
		for _, ln := range lns {
			c, err := acceptTimeout(ln, s.cfg.DataTimeout)
			if err != nil {
				closeAll(conns)
				return nil, err
			}
			conns = append(conns, c)
		}
		applySBuf(sess, conns)
		return conns, nil
	}
	if addrs, ok := sess.Extra[extraSpor].([]string); ok && len(addrs) > 0 {
		conns := make([]net.Conn, 0, len(addrs))
		for _, a := range addrs {
			c, err := net.DialTimeout("tcp", a, s.cfg.DataTimeout)
			if err != nil {
				closeAll(conns)
				return nil, err
			}
			conns = append(conns, c)
		}
		applySBuf(sess, conns)
		return conns, nil
	}
	p := s.parallelism(sess)
	conns := make([]net.Conn, 0, p)
	for i := 0; i < p; i++ {
		c, err := sess.OpenDataConn()
		if err != nil {
			closeAll(conns)
			return nil, err
		}
		conns = append(conns, c)
	}
	applySBuf(sess, conns)
	return conns, nil
}

func acceptTimeout(ln net.Listener, d time.Duration) (net.Conn, error) {
	type result struct {
		c   net.Conn
		err error
	}
	ch := make(chan result, 1)
	go func() {
		c, err := ln.Accept()
		ch <- result{c, err}
	}()
	select {
	case r := <-ch:
		return r.c, r.err
	//gridlint:wallclock-ok bounds a real Accept on a live socket, not simulated time
	case <-time.After(d):
		return nil, errors.New("gridftp: timed out waiting for data connection")
	}
}

func closeAll(conns []net.Conn) {
	for _, c := range conns {
		_ = c.Close() // best-effort teardown of the stripe set
	}
}

func (s *Server) handleRETR(sess *ftp.Session, arg string) {
	if sess.Mode() != 'E' {
		ftp.HandleRETR(sess, arg)
		return
	}
	if !sess.RequireAuth() {
		return
	}
	f, err := sess.Store().Open(sess.ResolvePath(arg))
	if err != nil {
		sess.Reply(550, err.Error())
		return
	}
	offset := sess.TakeRest()
	size := f.Size()
	if offset > size {
		sess.Reply(554, fmt.Sprintf("restart offset %d beyond size %d", offset, size))
		return
	}
	s.sendRange(sess, f, offset, size-offset, arg)
}

func (s *Server) handleERET(sess *ftp.Session, arg string) {
	if !sess.RequireAuth() {
		return
	}
	// ERET P <offset> <length> <path>
	fields := strings.SplitN(arg, " ", 4)
	if len(fields) != 4 || !strings.EqualFold(fields[0], "P") {
		sess.Reply(501, "usage: ERET P <offset> <length> <path>")
		return
	}
	offset, err1 := strconv.ParseInt(fields[1], 10, 64)
	length, err2 := strconv.ParseInt(fields[2], 10, 64)
	if err1 != nil || err2 != nil || offset < 0 || length < 0 {
		sess.Reply(501, "bad offset/length")
		return
	}
	f, err := sess.Store().Open(sess.ResolvePath(fields[3]))
	if err != nil {
		sess.Reply(550, err.Error())
		return
	}
	if offset+length > f.Size() {
		sess.Reply(554, fmt.Sprintf("region (%d,%d) beyond size %d", offset, length, f.Size()))
		return
	}
	if sess.Mode() != 'E' {
		// Stream-mode partial retrieve.
		sess.Reply(150, fmt.Sprintf("opening data connection for %s region (%d,%d)", fields[3], offset, length))
		conn, err := sess.OpenDataConn()
		if err != nil {
			sess.Reply(425, err.Error())
			return
		}
		defer conn.Close()
		if _, err := io.Copy(conn, io.NewSectionReader(f, offset, length)); err != nil {
			sess.Reply(426, "transfer aborted: "+err.Error())
			return
		}
		sess.Reply(226, "transfer complete")
		return
	}
	s.sendRange(sess, f, offset, length, fields[3])
}

// sendRange runs a MODE E send of [offset, offset+length) over the
// session's data channels.
func (s *Server) sendRange(sess *ftp.Session, f ftp.File, offset, length int64, name string) {
	sess.Reply(150, fmt.Sprintf("opening %d data channel(s) for %s (%d bytes, MODE E)",
		s.channelCount(sess), name, length))
	conns, err := s.dataChannels(sess)
	if err != nil {
		sess.Reply(425, err.Error())
		return
	}
	defer closeAll(conns)
	ws := make([]io.Writer, len(conns))
	for i, c := range conns {
		ws[i] = c
	}
	start := sess.Now()
	if err := SendBlocks(ws, f, offset, length, DefaultBlockSize); err != nil {
		sess.Reply(426, "transfer aborted: "+err.Error())
		return
	}
	sess.LogTransfer(sess.Now().Sub(start), length, name, 'o')
	sess.Reply(226, fmt.Sprintf("transfer complete (%d bytes on %d channels)", length, len(conns)))
}

func (s *Server) channelCount(sess *ftp.Session) int {
	if lns, ok := sess.Extra[extraSpas].([]net.Listener); ok && len(lns) > 0 {
		return len(lns)
	}
	if addrs, ok := sess.Extra[extraSpor].([]string); ok && len(addrs) > 0 {
		return len(addrs)
	}
	return s.parallelism(sess)
}

func (s *Server) handleSTOR(sess *ftp.Session, arg string) {
	if sess.Mode() != 'E' {
		ftp.HandleSTOR(sess, arg)
		return
	}
	if !sess.RequireAuth() {
		return
	}
	s.receiveInto(sess, arg, 0, false)
}

func (s *Server) handleESTO(sess *ftp.Session, arg string) {
	if !sess.RequireAuth() {
		return
	}
	// ESTO A <offset> <path>
	fields := strings.SplitN(arg, " ", 3)
	if len(fields) != 3 || !strings.EqualFold(fields[0], "A") {
		sess.Reply(501, "usage: ESTO A <offset> <path>")
		return
	}
	offset, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil || offset < 0 {
		sess.Reply(501, "bad offset")
		return
	}
	if sess.Mode() != 'E' {
		sess.SetRest(offset)
		ftp.HandleSTOR(sess, fields[2])
		return
	}
	s.receiveInto(sess, fields[2], offset, true)
}

// receiveInto runs a MODE E receive into path, shifting block offsets by
// base when adjusted (ESTO A).
func (s *Server) receiveInto(sess *ftp.Session, path string, base int64, adjusted bool) {
	path = sess.ResolvePath(path)
	var f ftp.File
	var err error
	if adjusted {
		f, err = sess.Store().Open(path)
		if errors.Is(err, ftp.ErrNotFound) {
			f, err = sess.Store().Create(path)
		}
	} else {
		f, err = sess.Store().Create(path)
	}
	if err != nil {
		sess.Reply(550, err.Error())
		return
	}
	sess.Reply(150, fmt.Sprintf("ready for %d data channel(s) (MODE E)", s.channelCount(sess)))
	conns, err := s.dataChannels(sess)
	if err != nil {
		sess.Reply(425, err.Error())
		return
	}
	defer closeAll(conns)
	rs := make([]io.Reader, len(conns))
	for i, c := range conns {
		rs[i] = c
	}
	dst := io.WriterAt(f)
	if base != 0 {
		dst = offsetWriterAt{f, base}
	}
	start := sess.Now()
	total, announced, eods, err := ReceiveBlocks(rs, dst)
	if err != nil {
		sess.Reply(426, "transfer aborted: "+err.Error())
		return
	}
	if announced > 0 && eods < announced {
		sess.Reply(426, fmt.Sprintf("missing data channels: got %d EODs of %d", eods, announced))
		return
	}
	sess.LogTransfer(sess.Now().Sub(start), total, path, 'i')
	sess.Reply(226, fmt.Sprintf("transfer complete (%d bytes on %d channels)", total, len(conns)))
}

type offsetWriterAt struct {
	w    io.WriterAt
	base int64
}

func (o offsetWriterAt) WriteAt(p []byte, off int64) (int, error) {
	return o.w.WriteAt(p, off+o.base)
}

func (s *Server) handleSPAS(sess *ftp.Session, _ string) {
	if !sess.RequireAuth() {
		return
	}
	// Close any previous stripe listeners.
	if old, ok := sess.Extra[extraSpas].([]net.Listener); ok {
		for _, ln := range old {
			_ = ln.Close() // superseded listeners; best-effort release
		}
	}
	host, _, err := net.SplitHostPort(sess.Conn().LocalAddr().String())
	if err != nil {
		sess.Reply(425, err.Error())
		return
	}
	lns := make([]net.Listener, 0, s.cfg.Stripes)
	specs := make([]string, 0, s.cfg.Stripes)
	for i := 0; i < s.cfg.Stripes; i++ {
		ln, err := net.Listen("tcp", net.JoinHostPort(host, "0"))
		if err != nil {
			for _, l := range lns {
				_ = l.Close() // unwind partial stripe set
			}
			sess.Reply(425, "cannot open stripe listener: "+err.Error())
			return
		}
		spec, err := ftp.FormatPasvAddr(ln.Addr())
		if err != nil {
			_ = ln.Close()
			for _, l := range lns {
				_ = l.Close() // unwind partial stripe set
			}
			sess.Reply(425, err.Error())
			return
		}
		lns = append(lns, ln)
		specs = append(specs, spec)
	}
	sess.Extra[extraSpas] = lns
	delete(sess.Extra, extraSpor)
	sess.ReplyLines(229, "Entering Striped Passive Mode", specs, "End")
}

func (s *Server) handleSPOR(sess *ftp.Session, arg string) {
	if !sess.RequireAuth() {
		return
	}
	fields := strings.Fields(arg)
	if len(fields) == 0 {
		sess.Reply(501, "SPOR needs at least one address")
		return
	}
	addrs := make([]string, 0, len(fields))
	for _, f := range fields {
		a, err := ftp.ParsePasvAddr(f)
		if err != nil {
			sess.Reply(501, err.Error())
			return
		}
		addrs = append(addrs, a)
	}
	sess.Extra[extraSpor] = addrs
	if old, ok := sess.Extra[extraSpas].([]net.Listener); ok {
		for _, ln := range old {
			_ = ln.Close() // SPOR supersedes SPAS; best-effort release
		}
		delete(sess.Extra, extraSpas)
	}
	sess.Reply(200, fmt.Sprintf("striped port set (%d stripes)", len(addrs)))
}
