package gridftp

import (
	"bytes"
	"io"
	"math/rand"
	"net"
	"strings"
	"testing"
	"testing/quick"
	"time"

	"github.com/hpclab/datagrid/internal/ftp"
	"github.com/hpclab/datagrid/internal/gsi"
)

// startServer launches a GridFTP server with a seeded payload file.
func startServer(t *testing.T, cfg ServerConfig) (*Server, string, []byte) {
	t.Helper()
	payload := make([]byte, 1<<20)
	rand.New(rand.NewSource(99)).Read(payload)
	if cfg.Store == nil {
		st := ftp.NewMemStore()
		if err := st.Put("/data/big.bin", payload); err != nil {
			t.Fatal(err)
		}
		cfg.Store = st
	}
	srv, err := NewServer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	return srv, addr, payload
}

func dialAndLogin(t *testing.T, addr string, cfg ClientConfig) *Client {
	t.Helper()
	c, err := Dial(addr, cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	if err := c.Login("anonymous", "x"); err != nil {
		t.Fatal(err)
	}
	if err := c.Setup(); err != nil {
		t.Fatal(err)
	}
	return c
}

func TestStreamModeGet(t *testing.T) {
	_, addr, payload := startServer(t, ServerConfig{})
	c := dialAndLogin(t, addr, ClientConfig{})
	got, err := c.Get("/data/big.bin")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatal("stream-mode content mismatch")
	}
	if c.ModeE() {
		t.Fatal("parallelism 1 should not enable MODE E by default")
	}
}

func TestModeEGetSingleChannel(t *testing.T) {
	_, addr, payload := startServer(t, ServerConfig{})
	c := dialAndLogin(t, addr, ClientConfig{Parallelism: 1})
	if err := c.UseModeE(); err != nil {
		t.Fatal(err)
	}
	got, err := c.Get("/data/big.bin")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatal("MODE E single-channel mismatch")
	}
}

func TestModeEParallelGet(t *testing.T) {
	for _, p := range []int{2, 4, 8} {
		_, addr, payload := startServer(t, ServerConfig{})
		c := dialAndLogin(t, addr, ClientConfig{Parallelism: p})
		if !c.ModeE() {
			t.Fatal("parallelism > 1 must enable MODE E in Setup")
		}
		got, err := c.Get("/data/big.bin")
		if err != nil {
			t.Fatalf("p=%d: %v", p, err)
		}
		if !bytes.Equal(got, payload) {
			t.Fatalf("p=%d content mismatch", p)
		}
	}
}

func TestModeEPut(t *testing.T) {
	srv, addr, _ := startServer(t, ServerConfig{})
	c := dialAndLogin(t, addr, ClientConfig{Parallelism: 4})
	payload := make([]byte, 700_001)
	rand.New(rand.NewSource(5)).Read(payload)
	if err := c.Put("/up/parallel.bin", payload); err != nil {
		t.Fatal(err)
	}
	got, err := srv.Store().(*ftp.MemStore).Get("/up/parallel.bin")
	if err != nil || !bytes.Equal(got, payload) {
		t.Fatalf("upload mismatch: %d bytes, %v", len(got), err)
	}
}

func TestStreamModePut(t *testing.T) {
	srv, addr, _ := startServer(t, ServerConfig{})
	c := dialAndLogin(t, addr, ClientConfig{})
	payload := []byte("plain old stream upload")
	if err := c.Put("/up/s.bin", payload); err != nil {
		t.Fatal(err)
	}
	got, err := srv.Store().(*ftp.MemStore).Get("/up/s.bin")
	if err != nil || !bytes.Equal(got, payload) {
		t.Fatalf("upload mismatch: %v, %v", got, err)
	}
}

func TestPartialTransferERET(t *testing.T) {
	_, addr, payload := startServer(t, ServerConfig{})
	// Stream mode.
	c := dialAndLogin(t, addr, ClientConfig{})
	got, err := c.GetPartial("/data/big.bin", 1000, 5000)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload[1000:6000]) {
		t.Fatal("stream partial mismatch")
	}
	// MODE E with parallel channels.
	c2 := dialAndLogin(t, addr, ClientConfig{Parallelism: 3})
	got, err = c2.GetPartial("/data/big.bin", 123456, 70000)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload[123456:123456+70000]) {
		t.Fatal("MODE E partial mismatch")
	}
	// Region past EOF is refused.
	if _, err := c2.GetPartial("/data/big.bin", 1<<20, 10); err == nil {
		t.Fatal("region beyond EOF should fail")
	}
	if _, err := c2.GetPartial("/data/big.bin", -1, 10); err == nil {
		t.Fatal("negative offset should fail")
	}
}

func TestRestPartialModeE(t *testing.T) {
	_, addr, payload := startServer(t, ServerConfig{})
	c := dialAndLogin(t, addr, ClientConfig{Parallelism: 2})
	if _, err := c.Expect(350, "REST %d", 1<<19); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 1<<20)
	if err := c.retrModeE("RETR /data/big.bin", buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf[1<<19:], payload[1<<19:]) {
		t.Fatal("REST+RETR tail mismatch")
	}
}

func TestStripedGet(t *testing.T) {
	_, addr, payload := startServer(t, ServerConfig{Stripes: 3})
	c := dialAndLogin(t, addr, ClientConfig{Parallelism: 2})
	got, err := c.GetStriped("/data/big.bin")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatal("striped content mismatch")
	}
	// Striping requires MODE E.
	c2 := dialAndLogin(t, addr, ClientConfig{})
	if _, err := c2.GetStriped("/data/big.bin"); err == nil {
		t.Fatal("striped get without MODE E should fail")
	}
}

func TestThirdPartyStream(t *testing.T) {
	srcSrv, srcAddr, payload := startServer(t, ServerConfig{})
	dstStore := ftp.NewMemStore()
	_, dstAddr, _ := startServer(t, ServerConfig{Store: dstStore})
	_ = srcSrv
	src := dialAndLogin(t, srcAddr, ClientConfig{})
	dst := dialAndLogin(t, dstAddr, ClientConfig{})
	if err := ThirdParty(src, "/data/big.bin", dst, "/mirror/big.bin"); err != nil {
		t.Fatal(err)
	}
	got, err := dstStore.Get("/mirror/big.bin")
	if err != nil || !bytes.Equal(got, payload) {
		t.Fatalf("third-party copy mismatch: %d bytes, %v", len(got), err)
	}
}

func TestThirdPartyModeEParallel(t *testing.T) {
	_, srcAddr, payload := startServer(t, ServerConfig{})
	dstStore := ftp.NewMemStore()
	_, dstAddr, _ := startServer(t, ServerConfig{Store: dstStore})
	src := dialAndLogin(t, srcAddr, ClientConfig{Parallelism: 4})
	dst := dialAndLogin(t, dstAddr, ClientConfig{Parallelism: 4})
	if err := ThirdParty(src, "/data/big.bin", dst, "/mirror/big.bin"); err != nil {
		t.Fatal(err)
	}
	got, err := dstStore.Get("/mirror/big.bin")
	if err != nil || !bytes.Equal(got, payload) {
		t.Fatalf("parallel third-party mismatch: %d bytes, %v", len(got), err)
	}
}

func TestThirdPartyModeMismatch(t *testing.T) {
	_, srcAddr, _ := startServer(t, ServerConfig{})
	_, dstAddr, _ := startServer(t, ServerConfig{})
	src := dialAndLogin(t, srcAddr, ClientConfig{Parallelism: 2})
	dst := dialAndLogin(t, dstAddr, ClientConfig{})
	if err := ThirdParty(src, "/a", dst, "/b"); err == nil {
		t.Fatal("mode mismatch should be rejected")
	}
	if err := ThirdParty(nil, "/a", dst, "/b"); err == nil {
		t.Fatal("nil client should be rejected")
	}
}

func newGSI(t *testing.T, subject string, seed int64) (*gsi.CA, *gsi.Authenticator) {
	t.Helper()
	ca, err := gsi.NewCA([]byte("test-vo"))
	if err != nil {
		t.Fatal(err)
	}
	cred, err := ca.Issue(subject)
	if err != nil {
		t.Fatal(err)
	}
	a, err := gsi.NewAuthenticator(ca, cred, seed)
	if err != nil {
		t.Fatal(err)
	}
	return ca, a
}

func TestAuthGSI(t *testing.T) {
	_, serverAuth := newGSI(t, "/CN=gridftpd", 1)
	_, clientAuth := newGSI(t, "/CN=user", 2)
	_, addr, payload := startServer(t, ServerConfig{GSI: serverAuth, RequireGSI: true})
	c, err := Dial(addr, ClientConfig{Parallelism: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	// USER/PASS is disabled when GSI is required.
	if err := c.Login("anonymous", "x"); err == nil {
		t.Fatal("password login must be refused under RequireGSI")
	}
	peer, err := c.AuthGSI(clientAuth)
	if err != nil {
		t.Fatal(err)
	}
	if peer != "/CN=gridftpd" {
		t.Fatalf("peer = %q", peer)
	}
	if err := c.Setup(); err != nil {
		t.Fatal(err)
	}
	got, err := c.Get("/data/big.bin")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatal("GSI-authenticated transfer mismatch")
	}
}

func TestAuthGSIWrongCA(t *testing.T) {
	_, serverAuth := newGSI(t, "/CN=gridftpd", 1)
	rogueCA, err := gsi.NewCA([]byte("rogue"))
	if err != nil {
		t.Fatal(err)
	}
	cred, err := rogueCA.Issue("/CN=mallory")
	if err != nil {
		t.Fatal(err)
	}
	rogue, err := gsi.NewAuthenticator(rogueCA, cred, 3)
	if err != nil {
		t.Fatal(err)
	}
	_, addr, _ := startServer(t, ServerConfig{GSI: serverAuth, RequireGSI: true})
	c, err := Dial(addr, ClientConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.AuthGSI(rogue); err == nil {
		t.Fatal("wrong-CA client must be rejected")
	}
}

func TestAuthGSIUnconfigured(t *testing.T) {
	_, addr, _ := startServer(t, ServerConfig{})
	c, err := Dial(addr, ClientConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	code, _, err := c.Cmd("AUTH GSI")
	if err != nil || code != 534 {
		t.Fatalf("AUTH GSI on plain server = %d, %v; want 534", code, err)
	}
	code, _, err = c.Cmd("AUTH TLS")
	if err != nil || code != 504 {
		t.Fatalf("AUTH TLS = %d, %v; want 504", code, err)
	}
}

func TestFeatAdvertisesExtensions(t *testing.T) {
	_, addr, _ := startServer(t, ServerConfig{})
	c := dialAndLogin(t, addr, ClientConfig{})
	code, msg, err := c.Cmd("FEAT")
	if err != nil || code != 211 {
		t.Fatal(err)
	}
	for _, feat := range []string{"MODE E", "PARALLEL", "ERET", "ESTO", "SBUF", "SPAS", "SPOR", "AUTH GSI"} {
		if !strings.Contains(msg, feat) {
			t.Fatalf("FEAT missing %q:\n%s", feat, msg)
		}
	}
}

func TestSBUF(t *testing.T) {
	_, addr, payload := startServer(t, ServerConfig{})
	c := dialAndLogin(t, addr, ClientConfig{Parallelism: 2, TCPBuffer: 128 * 1024})
	got, err := c.Get("/data/big.bin")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatal("SBUF transfer mismatch")
	}
	code, _, err := c.Cmd("SBUF -5")
	if err != nil || code != 501 {
		t.Fatalf("SBUF -5 = %d, %v", code, err)
	}
}

func TestOPTSValidation(t *testing.T) {
	_, addr, _ := startServer(t, ServerConfig{})
	c := dialAndLogin(t, addr, ClientConfig{})
	code, _, err := c.Cmd("OPTS RETR Parallelism=0;")
	if err != nil || code != 501 {
		t.Fatalf("parallelism 0 = %d, %v", code, err)
	}
	code, _, err = c.Cmd("OPTS RETR Nothing=1;")
	if err != nil || code != 501 {
		t.Fatalf("unknown opt = %d, %v", code, err)
	}
	code, _, err = c.Cmd("OPTS MLST foo")
	if err != nil || code != 501 {
		t.Fatalf("OPTS MLST = %d, %v", code, err)
	}
}

func TestESTOAdjustedStore(t *testing.T) {
	srv, addr, _ := startServer(t, ServerConfig{})
	c := dialAndLogin(t, addr, ClientConfig{Parallelism: 2})
	// First lay down a base file, then ESTO a chunk at an offset.
	base := make([]byte, 1000)
	if err := c.Put("/up/base.bin", base); err != nil {
		t.Fatal(err)
	}
	chunk := []byte("INSERTED")
	addrSpec, err := c.Passive()
	if err != nil {
		t.Fatal(err)
	}
	conns, err := c.dialDataChannels(addrSpec, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Expect(200, "OPTS STOR Parallelism=1;"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Expect(150, "ESTO A 100 /up/base.bin"); err != nil {
		t.Fatal(err)
	}
	ws := make([]io.Writer, len(conns))
	for i, cn := range conns {
		ws[i] = cn
	}
	if err := SendBlocks(ws, bytesReaderAt(chunk), 0, int64(len(chunk)), 4); err != nil {
		t.Fatal(err)
	}
	closeAll(conns)
	if _, err := c.ExpectFinal(226); err != nil {
		t.Fatal(err)
	}
	got, err := srv.Store().(*ftp.MemStore).Get("/up/base.bin")
	if err != nil {
		t.Fatal(err)
	}
	if string(got[100:108]) != "INSERTED" {
		t.Fatalf("ESTO content = %q", got[95:115])
	}
}

func TestParseParallelism(t *testing.T) {
	n, err := parseParallelism("Parallelism=4,4,4;")
	if err != nil || n != 4 {
		t.Fatalf("parse = %d, %v", n, err)
	}
	n, err = parseParallelism("parallelism=16")
	if err != nil || n != 16 {
		t.Fatalf("parse lowercase = %d, %v", n, err)
	}
	for _, bad := range []string{"", "Parallelism=;", "Parallelism=x", "Parallelism=-1;"} {
		if _, err := parseParallelism(bad); err == nil {
			t.Fatalf("parseParallelism(%q) should fail", bad)
		}
	}
}

func TestClientConfigValidation(t *testing.T) {
	if _, err := Dial("127.0.0.1:1", ClientConfig{Parallelism: -1}); err == nil {
		t.Fatal("negative parallelism should be rejected")
	}
	if _, err := Dial("127.0.0.1:1", ClientConfig{BlockSize: -1}); err == nil {
		t.Fatal("negative block size should be rejected")
	}
}

func TestServerConfigValidation(t *testing.T) {
	if _, err := NewServer(ServerConfig{}); err == nil {
		t.Fatal("missing store should be rejected")
	}
	st := ftp.NewMemStore()
	if _, err := NewServer(ServerConfig{Store: st, Stripes: -1}); err == nil {
		t.Fatal("negative stripes should be rejected")
	}
	if _, err := NewServer(ServerConfig{Store: st, RequireGSI: true}); err == nil {
		t.Fatal("RequireGSI without GSI should be rejected")
	}
}

// Property: MODE E parallel round trips over real sockets preserve
// arbitrary content.
func TestPropertyParallelSocketRoundTrip(t *testing.T) {
	srv, addr, _ := startServer(t, ServerConfig{})
	f := func(seed int64, sizeRaw uint16, pRaw uint8) bool {
		size := int(sizeRaw)%100000 + 1
		p := int(pRaw)%6 + 1
		payload := make([]byte, size)
		rand.New(rand.NewSource(seed)).Read(payload)
		c, err := Dial(addr, ClientConfig{Parallelism: p, Timeout: 5 * time.Second})
		if err != nil {
			return false
		}
		defer c.Close()
		if err := c.Login("u", "p"); err != nil {
			return false
		}
		if err := c.Setup(); err != nil {
			return false
		}
		if p == 1 {
			if err := c.UseModeE(); err != nil {
				return false
			}
		}
		if err := c.Put("/prop/f.bin", payload); err != nil {
			return false
		}
		got, err := c.Get("/prop/f.bin")
		if err != nil {
			return false
		}
		if err := c.Quit(); err != nil {
			return false
		}
		return bytes.Equal(got, payload)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
	_ = srv
}

func TestThirdPartyStriped(t *testing.T) {
	_, srcAddr, payload := startServer(t, ServerConfig{Stripes: 3})
	dstStore := ftp.NewMemStore()
	_, dstAddr, _ := startServer(t, ServerConfig{Store: dstStore})
	src := dialAndLogin(t, srcAddr, ClientConfig{Parallelism: 2})
	dst := dialAndLogin(t, dstAddr, ClientConfig{Parallelism: 2})
	if err := ThirdPartyStriped(src, "/data/big.bin", dst, "/mirror/striped.bin"); err != nil {
		t.Fatal(err)
	}
	got, err := dstStore.Get("/mirror/striped.bin")
	if err != nil || !bytes.Equal(got, payload) {
		t.Fatalf("striped third-party mismatch: %d bytes, %v", len(got), err)
	}
	// Requires MODE E on both ends.
	s2 := dialAndLogin(t, srcAddr, ClientConfig{})
	d2 := dialAndLogin(t, dstAddr, ClientConfig{})
	if err := ThirdPartyStriped(s2, "/a", d2, "/b"); err == nil {
		t.Fatal("stream-mode striped third-party should be rejected")
	}
	if err := ThirdPartyStriped(nil, "/a", d2, "/b"); err == nil {
		t.Fatal("nil client should be rejected")
	}
}

func TestESTOStreamMode(t *testing.T) {
	srv, addr, _ := startServer(t, ServerConfig{})
	c := dialAndLogin(t, addr, ClientConfig{})
	if err := c.Put("/up/base.bin", make([]byte, 100)); err != nil {
		t.Fatal(err)
	}
	// ESTO A in stream mode: adjusted store via the plain data channel.
	pasvAddr, err := c.Passive()
	if err != nil {
		t.Fatal(err)
	}
	data, err := net.DialTimeout("tcp", pasvAddr, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Expect(150, "ESTO A 40 /up/base.bin"); err != nil {
		t.Fatal(err)
	}
	if _, err := data.Write([]byte("MIDDLE")); err != nil {
		t.Fatal(err)
	}
	data.Close()
	if _, err := c.ExpectFinal(226); err != nil {
		t.Fatal(err)
	}
	got, err := srv.Store().(*ftp.MemStore).Get("/up/base.bin")
	if err != nil || string(got[40:46]) != "MIDDLE" {
		t.Fatalf("ESTO stream content = %q, %v", got[38:48], err)
	}
}

func TestESTOAndERETBadArgs(t *testing.T) {
	_, addr, _ := startServer(t, ServerConfig{})
	c := dialAndLogin(t, addr, ClientConfig{})
	for _, cmd := range []string{
		"ESTO nonsense",
		"ESTO A x /p",
		"ESTO A -1 /p",
		"ERET nonsense",
		"ERET P 1 2",
		"ERET P x y /p",
		"ERET P -1 5 /p",
	} {
		code, _, err := c.Cmd(cmd)
		if err != nil || code != 501 {
			t.Fatalf("%q = %d, %v; want 501", cmd, code, err)
		}
	}
	// ERET on a missing file.
	code, _, err := c.Cmd("ERET P 0 1 /missing")
	if err != nil || code != 550 {
		t.Fatalf("ERET missing = %d, %v; want 550", code, err)
	}
}

func TestModeXRejected(t *testing.T) {
	_, addr, _ := startServer(t, ServerConfig{})
	c := dialAndLogin(t, addr, ClientConfig{})
	code, _, err := c.Cmd("MODE X")
	if err != nil || code != 504 {
		t.Fatalf("MODE X = %d, %v; want 504", code, err)
	}
}

func TestSPORBadAddress(t *testing.T) {
	_, addr, _ := startServer(t, ServerConfig{})
	c := dialAndLogin(t, addr, ClientConfig{})
	code, _, err := c.Cmd("SPOR not,an,addr")
	if err != nil || code != 501 {
		t.Fatalf("bad SPOR = %d, %v; want 501", code, err)
	}
	code, _, err = c.Cmd("SPOR")
	if err != nil || code != 501 {
		t.Fatalf("empty SPOR = %d, %v; want 501", code, err)
	}
}

func TestSPASReissueReplacesListeners(t *testing.T) {
	_, addr, payload := startServer(t, ServerConfig{Stripes: 2})
	c := dialAndLogin(t, addr, ClientConfig{Parallelism: 1})
	if err := c.UseModeE(); err != nil {
		t.Fatal(err)
	}
	// First SPAS, then immediately a second: the first listeners must be
	// replaced, and a striped get against the fresh set still works.
	if code, _, err := c.Cmd("SPAS"); err != nil || code != 229 {
		t.Fatalf("first SPAS = %d, %v", code, err)
	}
	got, err := c.GetStriped("/data/big.bin")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatal("striped content mismatch after SPAS reissue")
	}
}

func TestXferlogModeE(t *testing.T) {
	var logBuf bytes.Buffer
	store := ftp.NewMemStore()
	payload := make([]byte, 1<<20)
	rand.New(rand.NewSource(1)).Read(payload)
	if err := store.Put("/data/f.bin", payload); err != nil {
		t.Fatal(err)
	}
	srv, err := NewServer(ServerConfig{Store: store, TransferLog: &logBuf})
	if err != nil {
		t.Fatal(err)
	}
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	c := dialAndLogin(t, addr, ClientConfig{Parallelism: 4})
	if _, err := c.Get("/data/f.bin"); err != nil {
		t.Fatal(err)
	}
	if err := c.Put("/up/g.bin", payload[:1000]); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(logBuf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("xferlog lines = %d:\n%s", len(lines), logBuf.String())
	}
	if !strings.Contains(lines[0], "/data/f.bin") || !strings.Contains(lines[0], " o a ") {
		t.Fatalf("MODE E download line: %s", lines[0])
	}
	if !strings.Contains(lines[1], "/up/g.bin") || !strings.Contains(lines[1], " i a ") {
		t.Fatalf("MODE E upload line: %s", lines[1])
	}
}
