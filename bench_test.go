// Package datagrid holds the repository-level benchmark harness: one
// benchmark per paper artifact (Fig. 3, Fig. 4, Table 1), one per ablation
// and extension experiment from DESIGN.md, and micro-benchmarks for the
// performance-critical substrates. Run with
//
//	go test -bench=. -benchmem
//
// Experiment benchmarks re-run the full simulated experiment per
// iteration and report the headline quantity (transfer seconds, regret,
// MSE) as custom metrics, so `go test -bench` regenerates the paper's
// numbers.
package datagrid

import (
	"bytes"
	"fmt"
	"io"
	"math/rand"
	"runtime"
	"strings"
	"testing"
	"time"

	"github.com/hpclab/datagrid/internal/core"
	"github.com/hpclab/datagrid/internal/experiments"
	"github.com/hpclab/datagrid/internal/ftp"
	"github.com/hpclab/datagrid/internal/gridftp"
	"github.com/hpclab/datagrid/internal/netsim"
	"github.com/hpclab/datagrid/internal/nws"
	"github.com/hpclab/datagrid/internal/replica"
	"github.com/hpclab/datagrid/internal/simulation"
	"github.com/hpclab/datagrid/internal/simxfer"
	"github.com/hpclab/datagrid/internal/workload"
)

const benchSeed = 42

// BenchmarkFigure3FTPvsGridFTP regenerates Fig. 3: FTP vs GridFTP transfer
// time over the THU -> HIT path for each paper file size.
func BenchmarkFigure3FTPvsGridFTP(b *testing.B) {
	for _, proto := range []simxfer.Protocol{simxfer.ProtoFTP, simxfer.ProtoGridFTPStream} {
		for _, sizeMB := range workload.PaperFileSizesMB {
			b.Run(fmt.Sprintf("%v/%dMB", proto, sizeMB), func(b *testing.B) {
				var last float64
				for i := 0; i < b.N; i++ {
					env, err := experiments.NewEnv(benchSeed, false)
					if err != nil {
						b.Fatal(err)
					}
					res, err := env.MeasureAt(experiments.Warmup, "alpha1", "gridhit3",
						sizeMB*workload.MB, simxfer.Options{Protocol: proto})
					if err != nil {
						b.Fatal(err)
					}
					last = res.Duration().Seconds()
				}
				b.ReportMetric(last, "xfer-sec")
			})
		}
	}
}

// BenchmarkFigure4ParallelStreams regenerates Fig. 4: GridFTP transfer
// time over the THU -> Li-Zen bottleneck by stream count.
func BenchmarkFigure4ParallelStreams(b *testing.B) {
	for _, streams := range workload.PaperStreamCounts {
		for _, sizeMB := range workload.PaperFileSizesMB {
			b.Run(fmt.Sprintf("streams=%d/%dMB", streams, sizeMB), func(b *testing.B) {
				var last float64
				for i := 0; i < b.N; i++ {
					env, err := experiments.NewEnv(benchSeed, false)
					if err != nil {
						b.Fatal(err)
					}
					res, err := env.MeasureAt(experiments.Warmup, "alpha2", "lz04",
						sizeMB*workload.MB, simxfer.GridFTPOptions(streams))
					if err != nil {
						b.Fatal(err)
					}
					last = res.Duration().Seconds()
				}
				b.ReportMetric(last, "xfer-sec")
			})
		}
	}
}

// BenchmarkTable1CostModel regenerates Table 1 and reports the rank
// agreement between scores and measured times.
func BenchmarkTable1CostModel(b *testing.B) {
	var res experiments.Table1Result
	for i := 0; i < b.N; i++ {
		var err error
		res, _, err = experiments.Table1(benchSeed)
		if err != nil {
			b.Fatal(err)
		}
	}
	agree := 0.0
	if res.OrderingsAgree {
		agree = 1
	}
	b.ReportMetric(agree, "rank-agreement")
	b.ReportMetric(res.Spearman, "spearman")
}

// BenchmarkAblationSelectors reports each policy's mean fetch time.
func BenchmarkAblationSelectors(b *testing.B) {
	var rows []experiments.SelectorResult
	for i := 0; i < b.N; i++ {
		var err error
		rows, _, err = experiments.AblationSelectors(benchSeed)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range rows {
		b.ReportMetric(r.MeanSeconds, r.Name+"-sec")
	}
}

// BenchmarkAblationWeights reports oracle regret per weight vector.
func BenchmarkAblationWeights(b *testing.B) {
	var rows []experiments.WeightResult
	for i := 0; i < b.N; i++ {
		var err error
		rows, _, err = experiments.AblationWeights(benchSeed)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range rows {
		name := fmt.Sprintf("w%.0f-%.0f-%.0f-regret", r.Weights.Bandwidth*100, r.Weights.CPU*100, r.Weights.IO*100)
		b.ReportMetric(r.MeanRegretSeconds, name)
	}
}

// BenchmarkAblationForecasters reports the adaptive bank's MSE against the
// best and worst individual experts.
func BenchmarkAblationForecasters(b *testing.B) {
	var rows []experiments.ForecasterResult
	for i := 0; i < b.N; i++ {
		var err error
		rows, _, err = experiments.AblationForecasters(benchSeed)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range rows {
		switch r.Name {
		case "nws-bank(adaptive)":
			b.ReportMetric(r.MSE, "bank-mse")
		case "last":
			b.ReportMetric(r.MSE, "last-mse")
		case "run_mean":
			b.ReportMetric(r.MSE, "runmean-mse")
		}
	}
}

// BenchmarkExtensionStriped reports transfer time by stripe count with a
// disk-saturated source.
func BenchmarkExtensionStriped(b *testing.B) {
	var rows []experiments.StripedResult
	for i := 0; i < b.N; i++ {
		var err error
		rows, _, err = experiments.ExtensionStriped(benchSeed)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range rows {
		b.ReportMetric(r.Seconds, fmt.Sprintf("stripes%d-sec", r.Stripes))
	}
}

// BenchmarkExtensionScale reports the cost model's improvement over random
// selection as the grid grows.
func BenchmarkExtensionScale(b *testing.B) {
	var rows []experiments.ScaleResult
	for i := 0; i < b.N; i++ {
		var err error
		rows, _, err = experiments.ExtensionScale(benchSeed)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range rows {
		b.ReportMetric(r.ImprovementPercent, fmt.Sprintf("sites%d-improve-pct", r.Sites))
	}
}

// BenchmarkGridbenchAll runs the entire evaluation suite — the workload
// behind `gridbench -all` — through the deterministic worker pool, once
// sequentially and once at the machine's full width. The parallel over
// sequential wall-time ratio is the speedup the runner delivers here;
// output equality between the two is enforced separately by
// cmd/gridbench's TestParallelOutputByteIdentical and the CI diff gate.
func BenchmarkGridbenchAll(b *testing.B) {
	for _, bc := range []struct {
		name    string
		workers int
	}{
		{"sequential", 1},
		{fmt.Sprintf("parallel-%d", runtime.NumCPU()), runtime.NumCPU()},
	} {
		// The -all selection: every group except the opt-in fault sweep,
		// which BenchmarkFaultsSweep records separately.
		var entries []experiments.SuiteEntry
		for _, e := range experiments.Suite() {
			if e.Group != experiments.GroupFaults {
				entries = append(entries, e)
			}
		}
		b.Run(bc.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				results, err := experiments.RunEntries(entries, benchSeed, bc.workers)
				if err != nil {
					b.Fatal(err)
				}
				if len(results) != len(entries) {
					b.Fatalf("got %d entry results, want %d", len(results), len(entries))
				}
			}
		})
	}
}

// --- substrate micro-benchmarks ---

// BenchmarkModeEFraming measures MODE E block encode+decode throughput.
func BenchmarkModeEFraming(b *testing.B) {
	payload := make([]byte, 64*1024)
	rand.New(rand.NewSource(1)).Read(payload)
	var buf bytes.Buffer
	b.SetBytes(int64(len(payload)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf.Reset()
		if err := gridftp.WriteBlock(&buf, gridftp.Block{Offset: uint64(i), Payload: payload}); err != nil {
			b.Fatal(err)
		}
		if _, err := gridftp.ReadBlock(&buf); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkGridFTPLoopback measures a real 8 MiB MODE E download over
// loopback sockets, per parallelism level.
func BenchmarkGridFTPLoopback(b *testing.B) {
	store := ftp.NewMemStore()
	payload := make([]byte, 8<<20)
	rand.New(rand.NewSource(2)).Read(payload)
	if err := store.Put("/bench.bin", payload); err != nil {
		b.Fatal(err)
	}
	srv, err := gridftp.NewServer(gridftp.ServerConfig{Store: store})
	if err != nil {
		b.Fatal(err)
	}
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	defer srv.Close()
	for _, p := range []int{1, 4} {
		b.Run(fmt.Sprintf("p=%d", p), func(b *testing.B) {
			c, err := gridftp.Dial(addr, gridftp.ClientConfig{Parallelism: p, Timeout: 30 * time.Second})
			if err != nil {
				b.Fatal(err)
			}
			defer c.Close()
			if err := c.Login("u", "p"); err != nil {
				b.Fatal(err)
			}
			if err := c.Setup(); err != nil {
				b.Fatal(err)
			}
			if p == 1 {
				if err := c.UseModeE(); err != nil {
					b.Fatal(err)
				}
			}
			b.SetBytes(int64(len(payload)))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				got, err := c.Get("/bench.bin")
				if err != nil {
					b.Fatal(err)
				}
				if len(got) != len(payload) {
					b.Fatal("short read")
				}
			}
		})
	}
}

// BenchmarkNetsimFlowEvents measures the flow-level simulator's event
// throughput with many concurrent flows on one bottleneck.
func BenchmarkNetsimFlowEvents(b *testing.B) {
	for i := 0; i < b.N; i++ {
		eng := simulation.NewEngine()
		net := netsim.New(eng, 1)
		if err := net.AddNode("a"); err != nil {
			b.Fatal(err)
		}
		if err := net.AddNode("z"); err != nil {
			b.Fatal(err)
		}
		if err := net.AddLink("a", "z", netsim.LinkConfig{CapacityBps: 1e9, Delay: 5 * time.Millisecond, LossRate: 0.001}); err != nil {
			b.Fatal(err)
		}
		for f := 0; f < 64; f++ {
			if _, err := net.StartFlow("a", "z", 10_000_000, netsim.FlowOptions{WindowBytes: 1 << 20}, nil); err != nil {
				b.Fatal(err)
			}
		}
		if err := eng.Run(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkNetsimStressLargeGrid stresses the simulator core at a scale
// well beyond the paper's 4-site testbed: 56 sites behind an 8-router
// backbone ring, with 320 concurrent flows contending on the shared
// backbone links. This is the workload shape of the ExtensionScale
// "larger number of sites" study, and it tracks how the incremental
// max-min allocator behaves when rounds × flows × path-length is large.
func BenchmarkNetsimStressLargeGrid(b *testing.B) {
	const (
		routers  = 8
		sitesPer = 7 // 8*7 = 56 sites
		flows    = 320
	)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		eng := simulation.NewEngine()
		net := netsim.New(eng, 7)
		var sites []string
		for r := 0; r < routers; r++ {
			router := fmt.Sprintf("r%d", r)
			if err := net.AddNode(router); err != nil {
				b.Fatal(err)
			}
		}
		for r := 0; r < routers; r++ {
			router := fmt.Sprintf("r%d", r)
			// Backbone ring: shared bottlenecks for cross-router flows.
			next := fmt.Sprintf("r%d", (r+1)%routers)
			if err := net.AddLink(router, next, netsim.LinkConfig{
				CapacityBps: 1e9, Delay: 10 * time.Millisecond, LossRate: 1e-4,
			}); err != nil {
				b.Fatal(err)
			}
			for s := 0; s < sitesPer; s++ {
				site := fmt.Sprintf("s%d-%d", r, s)
				if err := net.AddNode(site); err != nil {
					b.Fatal(err)
				}
				if err := net.AddLink(site, router, netsim.LinkConfig{
					CapacityBps: 155e6, Delay: 2 * time.Millisecond, LossRate: 1e-5,
				}); err != nil {
					b.Fatal(err)
				}
				sites = append(sites, site)
			}
		}
		rng := rand.New(rand.NewSource(11))
		completed := 0
		for f := 0; f < flows; f++ {
			src := sites[rng.Intn(len(sites))]
			dst := sites[rng.Intn(len(sites))]
			for dst == src {
				dst = sites[rng.Intn(len(sites))]
			}
			if _, err := net.StartFlow(src, dst, 5_000_000,
				netsim.FlowOptions{WindowBytes: 1 << 20},
				func(*netsim.Flow) { completed++ }); err != nil {
				b.Fatal(err)
			}
		}
		if err := eng.Run(); err != nil {
			b.Fatal(err)
		}
		if completed != flows {
			b.Fatalf("completed %d of %d flows", completed, flows)
		}
	}
}

// BenchmarkForecasterBank measures the NWS expert bank's update+forecast
// cost per measurement.
func BenchmarkForecasterBank(b *testing.B) {
	bank, err := nws.NewBank(nil)
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bank.Update(50 + rng.NormFloat64()*5)
		if _, err := bank.Forecast(); err != nil && i > 0 {
			b.Fatal(err)
		}
	}
}

// BenchmarkSelectionRank measures one full catalog -> information-server ->
// score -> rank decision on the monitored testbed.
func BenchmarkSelectionRank(b *testing.B) {
	env, err := experiments.NewEnv(benchSeed, true)
	if err != nil {
		b.Fatal(err)
	}
	cat := replica.NewCatalog()
	if err := cat.CreateLogical(replica.LogicalFile{Name: "f", SizeBytes: 1 << 30}); err != nil {
		b.Fatal(err)
	}
	for _, h := range []string{"alpha4", "hit0", "lz02"} {
		if err := cat.Register("f", replica.Location{Host: h, Path: "/f"}); err != nil {
			b.Fatal(err)
		}
	}
	sel, err := core.NewSelectionServer(cat, env.Deploy.Server, core.PaperWeights, nil)
	if err != nil {
		b.Fatal(err)
	}
	if err := env.Engine.RunUntil(experiments.Warmup); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sel.Rank("f", env.Engine.Now()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMemStoreWriteAt measures the virtual filesystem's random write
// path (what MODE E receivers hammer).
func BenchmarkMemStoreWriteAt(b *testing.B) {
	st := ftp.NewMemStore()
	f, err := st.Create("/bench")
	if err != nil {
		b.Fatal(err)
	}
	block := make([]byte, 64*1024)
	const fileSize = 64 << 20
	b.SetBytes(int64(len(block)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		off := int64(i*len(block)) % fileSize
		if _, err := f.WriteAt(block, off); err != nil {
			b.Fatal(err)
		}
	}
	_ = io.Discard
}

// BenchmarkExtensionReplication reports fetch times before/after dynamic
// replica placement kicks in.
func BenchmarkExtensionReplication(b *testing.B) {
	var rows []experiments.ReplicationResult
	for i := 0; i < b.N; i++ {
		var err error
		rows, _, err = experiments.ExtensionReplication(benchSeed)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range rows {
		if r.Strategy == "threshold(3)+LRU" {
			b.ReportMetric(r.EarlySeconds, "before-sec")
			b.ReportMetric(r.LateSeconds, "after-sec")
		}
	}
}

// BenchmarkExtensionCoallocation reports single-source vs static vs
// dynamic co-allocated download times.
func BenchmarkExtensionCoallocation(b *testing.B) {
	var rows []experiments.CoallocationResult
	for i := 0; i < b.N; i++ {
		var err error
		rows, _, err = experiments.ExtensionCoallocation(benchSeed)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range rows {
		switch r.Config {
		case "single hit0":
			b.ReportMetric(r.Seconds, "best-single-sec")
		case "static split hit0+lz02":
			b.ReportMetric(r.Seconds, "static-sec")
		case "dynamic chunks hit0+lz02":
			b.ReportMetric(r.Seconds, "dynamic-sec")
		}
	}
}

// BenchmarkAblationLatency reports plain vs latency-aware selection on the
// small-file workload.
func BenchmarkAblationLatency(b *testing.B) {
	var rows []experiments.LatencyResult
	for i := 0; i < b.N; i++ {
		var err error
		rows, _, err = experiments.AblationLatency(benchSeed)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range rows {
		switch r.Selector {
		case "cost-model":
			b.ReportMetric(r.MeanSeconds, "plain-sec")
		case "cost-model+latency":
			b.ReportMetric(r.MeanSeconds, "latency-aware-sec")
		}
	}
}

// BenchmarkAblationAutoStreams reports adaptive vs fixed parallelism times.
func BenchmarkAblationAutoStreams(b *testing.B) {
	var rows []experiments.AutoStreamsResult
	for i := 0; i < b.N; i++ {
		var err error
		rows, _, err = experiments.AblationAutoStreams(benchSeed)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range rows {
		if len(r.Config) > 4 && r.Config[:4] == "auto" {
			key := "auto-hit-sec"
			if strings.Contains(r.Path, "LiZen") {
				key = "auto-lizen-sec"
			}
			b.ReportMetric(r.Seconds, key)
		}
	}
}
