package datagrid

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"testing"
	"time"

	"github.com/hpclab/datagrid/internal/core"
	"github.com/hpclab/datagrid/internal/experiments"
	"github.com/hpclab/datagrid/internal/info"
	"github.com/hpclab/datagrid/internal/replica"
)

// selectionBenchLogicals is the batch size: the number of logical files a
// selection burst scores (a job submission staging its input set).
const selectionBenchLogicals = 64

// selectionBenchEnv is the monitored Table 1 world plus a catalog of
// selectionBenchLogicals files, each replicated on alpha4, hit0 and lz02.
type selectionBenchEnv struct {
	now      time.Duration
	catalog  *replica.Catalog
	infoSrv  *info.Server
	sel      *core.SelectionServer
	logicals []string
}

func newSelectionBenchEnv(b *testing.B) *selectionBenchEnv {
	b.Helper()
	env, err := experiments.NewEnv(benchSeed, true)
	if err != nil {
		b.Fatal(err)
	}
	if err := env.Engine.RunUntil(experiments.Warmup); err != nil {
		b.Fatal(err)
	}
	catalog := replica.NewCatalog()
	logicals := make([]string, 0, selectionBenchLogicals)
	for i := 0; i < selectionBenchLogicals; i++ {
		name := fmt.Sprintf("file-%03d", i)
		if err := catalog.CreateLogical(replica.LogicalFile{Name: name, SizeBytes: 256 << 20}); err != nil {
			b.Fatal(err)
		}
		for _, h := range []string{"alpha4", "hit0", "lz02"} {
			if err := catalog.Register(name, replica.Location{Host: h, Path: "/data/" + name}); err != nil {
				b.Fatal(err)
			}
		}
		logicals = append(logicals, name)
	}
	infoSrv := env.Deploy.Server
	sel, err := core.NewSelectionServer(catalog, infoSrv, core.PaperWeights, nil)
	if err != nil {
		b.Fatal(err)
	}
	return &selectionBenchEnv{
		now: env.Engine.Now(), catalog: catalog, infoSrv: infoSrv,
		sel: sel, logicals: logicals,
	}
}

// rankPull is the pre-snapshot selection read path: one information-server
// pull per candidate per request. The info server queries live,
// single-goroutine substrates, so concurrent selectors must serialize
// every pull behind mu — which is exactly the scaling wall the snapshot
// plane removes.
func rankPull(e *selectionBenchEnv, mu *sync.Mutex, logical string) ([]core.Candidate, error) {
	locs, err := e.catalog.Locations(logical)
	if err != nil {
		return nil, err
	}
	cands := make([]core.Candidate, 0, len(locs))
	for _, loc := range locs {
		mu.Lock()
		rep, err := e.infoSrv.ReportLive(loc.Host, e.now)
		mu.Unlock()
		if err != nil {
			if errors.Is(err, info.ErrNoData) {
				continue
			}
			return nil, err
		}
		cands = append(cands, core.Candidate{Location: loc, Report: rep, Score: core.Score(rep, core.PaperWeights)})
	}
	if len(cands) == 0 {
		return nil, fmt.Errorf("no usable replica for %s", logical)
	}
	sort.SliceStable(cands, func(i, j int) bool {
		if cands[i].Score != cands[j].Score {
			return cands[i].Score > cands[j].Score
		}
		return cands[i].Location.String() < cands[j].Location.String()
	})
	return cands, nil
}

// BenchmarkSelectionThroughput measures a burst of replica selections —
// ranking selectionBenchLogicals logical files across W concurrent
// selectors — on the two read paths: "pull" (per-candidate information
// server queries, serialized because the live substrates are
// single-goroutine) versus "snapshot" (one pinned gridstate epoch,
// lock-free batch Rank). The per-op workload is identical; the snapshot
// path wins on per-request work (map lookups against an immutable epoch
// versus MDS searches, forecast evaluations and staleness checks), not on
// core count. Recorded to BENCH_select.json via `make bench-select`.
func BenchmarkSelectionThroughput(b *testing.B) {
	for _, workers := range []int{1, 8} {
		for _, mode := range []string{"pull", "snapshot"} {
			b.Run(fmt.Sprintf("%s/selectors=%d", mode, workers), func(b *testing.B) {
				e := newSelectionBenchEnv(b)
				// Shards: each worker ranks an interleaved share of the
				// logical files.
				shards := make([][]string, workers)
				for i, lg := range e.logicals {
					shards[i%workers] = append(shards[i%workers], lg)
				}
				var mu sync.Mutex
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					var wg sync.WaitGroup
					switch mode {
					case "pull":
						for _, shard := range shards {
							wg.Add(1)
							go func(shard []string) {
								defer wg.Done()
								for _, lg := range shard {
									if _, err := rankPull(e, &mu, lg); err != nil {
										b.Error(err)
										return
									}
								}
							}(shard)
						}
					case "snapshot":
						view := e.sel.PinView(e.now)
						for _, shard := range shards {
							wg.Add(1)
							go func(shard []string) {
								defer wg.Done()
								for _, lg := range shard {
									if _, err := view.Rank(lg); err != nil {
										b.Error(err)
										return
									}
								}
							}(shard)
						}
					}
					wg.Wait()
				}
				b.StopTimer()
				ranks := float64(b.N) * float64(len(e.logicals))
				if secs := b.Elapsed().Seconds(); secs > 0 {
					b.ReportMetric(ranks/secs, "ranks/s")
				}
			})
		}
	}
}
