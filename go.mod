module github.com/hpclab/datagrid

go 1.22
