package datagrid

import (
	"fmt"
	"testing"
	"time"

	"github.com/hpclab/datagrid/internal/netsim"
	"github.com/hpclab/datagrid/internal/simulation"
	"github.com/hpclab/datagrid/internal/topo"
)

// The sharded-engine benchmark world: a planet-scale-shaped grid whose
// workload decomposes by region — every flow stays inside its region, so
// each region's shard can advance through a whole conservative window
// without waiting on the others. This is the best case the space
// partition is built for; boundary-heavy workloads degenerate to the
// shard-0 owner and gain nothing (see docs/SIMULATOR.md).
var benchShardSpec = topo.Spec{Seed: benchSeed, Regions: 8, SitesPerRegion: 2, ClustersPerSite: 2, HostsPerCluster: 4}

const (
	benchShardFlowsPerRegion = 32
	benchShardFlowBytes      = 96 << 20
	benchShardFlowGap        = 3 * time.Millisecond
	benchShardDeadline       = 30 * time.Minute
)

type benchShardPlan struct {
	src, dst, region string
	at               time.Duration
}

func benchShardPlans(top *topo.Topology) []benchShardPlan {
	var plans []benchShardPlan
	for _, region := range top.Regions {
		hosts := top.HostsByRegion[region]
		for f := 0; f < benchShardFlowsPerRegion; f++ {
			plans = append(plans, benchShardPlan{
				src:    hosts[f%len(hosts)],
				dst:    hosts[(f+len(hosts)/2)%len(hosts)],
				region: region,
				at:     time.Duration(f) * benchShardFlowGap,
			})
		}
	}
	return plans
}

// runBenchShardSequential is the historical path: one engine, one
// network, every region's flows interleaved in a single event queue.
func runBenchShardSequential(b *testing.B) int {
	top, err := topo.Generate(benchShardSpec)
	if err != nil {
		b.Fatal(err)
	}
	eng := simulation.NewEngine()
	tb, err := top.Build(eng)
	if err != nil {
		b.Fatal(err)
	}
	net := tb.Network()
	plans := benchShardPlans(top)
	flows := make([]*netsim.Flow, len(plans))
	for i, pl := range plans {
		i, pl := i, pl
		if _, err := eng.Schedule(pl.at, func(time.Duration) {
			f, err := net.StartFlow(pl.src, pl.dst, benchShardFlowBytes,
				netsim.FlowOptions{WindowBytes: 1 << 20}, nil)
			if err != nil {
				b.Errorf("StartFlow %d: %v", i, err)
				return
			}
			flows[i] = f
		}); err != nil {
			b.Fatal(err)
		}
	}
	if err := eng.RunUntil(benchShardDeadline); err != nil {
		b.Fatal(err)
	}
	done := 0
	for _, f := range flows {
		if f != nil && f.State() == netsim.FlowDone {
			done++
		}
	}
	return done
}

// runBenchShardSharded partitions the same workload across a
// ShardedEngine: one full topology mirror per shard, each region's flows
// launched on the shard owning that region.
func runBenchShardSharded(b *testing.B, shards int) int {
	top, err := topo.Generate(benchShardSpec)
	if err != nil {
		b.Fatal(err)
	}
	_, lookahead, err := top.BoundaryCut()
	if err != nil {
		b.Fatal(err)
	}
	se, err := simulation.NewSharded(shards, lookahead)
	if err != nil {
		b.Fatal(err)
	}
	nets := make([]*netsim.Network, shards)
	for s := 0; s < shards; s++ {
		tb, err := top.Build(se.Shard(s))
		if err != nil {
			b.Fatal(err)
		}
		nets[s] = tb.Network()
	}
	regionIdx := make(map[string]int, len(top.Regions))
	for i, r := range top.Regions {
		regionIdx[r] = i
	}
	sn, err := netsim.AttachSharded(se, nets,
		topo.RegionOfHost,
		func(region string) int { return regionIdx[region] % shards })
	if err != nil {
		b.Fatal(err)
	}
	plans := benchShardPlans(top)
	flows := make([]*netsim.Flow, len(plans))
	for i, pl := range plans {
		i, pl := i, pl
		owner := sn.OwnerShard(pl.src, pl.dst)
		if _, err := se.Shard(owner).Schedule(pl.at, func(time.Duration) {
			f, err := sn.Net(owner).StartFlow(pl.src, pl.dst, benchShardFlowBytes,
				netsim.FlowOptions{WindowBytes: 1 << 20}, nil)
			if err != nil {
				b.Errorf("StartFlow %d: %v", i, err)
				return
			}
			flows[i] = f
		}); err != nil {
			b.Fatal(err)
		}
	}
	if err := se.RunUntil(benchShardDeadline); err != nil {
		b.Fatal(err)
	}
	done := 0
	for _, f := range flows {
		if f != nil && f.State() == netsim.FlowDone {
			done++
		}
	}
	return done
}

// BenchmarkShardedPlanetScale measures the space-partitioned engine
// against the single-engine path on a decomposable per-region workload
// (8 regions, 128 hosts, 256 intra-region flows). shards=1 is the plain
// Engine+Network historical path; higher counts run one sub-engine per
// shard in conservative time windows. Speedup requires real cores: on a
// single-CPU runner the sharded variants pay mirror-construction and
// window-coordination overhead with no parallel payoff, and the recorded
// numbers say so honestly. `make bench-netsim` records the output into
// BENCH_netsim.json.
func BenchmarkShardedPlanetScale(b *testing.B) {
	for _, shards := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			var done int
			for i := 0; i < b.N; i++ {
				if shards == 1 {
					done = runBenchShardSequential(b)
				} else {
					done = runBenchShardSharded(b, shards)
				}
			}
			if done == 0 {
				b.Fatal("no flows completed")
			}
			b.ReportMetric(float64(done), "flows-done")
		})
	}
}
