package datagrid

import (
	"testing"

	"github.com/hpclab/datagrid/internal/experiments"
)

// BenchmarkScaleSweep runs the planet-scale extension — the opt-in
// `gridbench -scale` workload (20 to 200 sites, 400 to 10k hosts, 10k-
// to million-entry catalogs) — and reports the headline quantities at
// the largest grid: Dijkstra tree builds vs the per-pair runs the old
// route cache would have paid, and the scan bound hierarchical selection
// held. `make bench-scale` records the output into BENCH_scale.json.
func BenchmarkScaleSweep(b *testing.B) {
	var rows []experiments.PlanetScaleResult
	for i := 0; i < b.N; i++ {
		var err error
		rows, _, err = experiments.ExtensionPlanetScale(benchSeed)
		if err != nil {
			b.Fatal(err)
		}
	}
	top := rows[0]
	for _, r := range rows {
		if r.Sites > top.Sites {
			top = r
		}
	}
	b.ReportMetric(float64(top.Sites), "sites")
	b.ReportMetric(float64(top.Hosts), "hosts")
	b.ReportMetric(float64(top.TreeBuilds), "tree-builds")
	b.ReportMetric(float64(top.PathBuilds), "pair-dijkstras")
	b.ReportMetric(top.DijkstraSavings(), "dijkstra-savings-x")
	b.ReportMetric(float64(top.MaxSingleRank), "max-rank-hosts")
	b.ReportMetric(top.MeanTransferSec, "xfer-sec")
}
