package datagrid

import (
	"testing"

	"github.com/hpclab/datagrid/internal/experiments"
)

// BenchmarkTrafficSweep runs the traffic-plane extension — the opt-in
// `gridbench -traffic` workload (Zipf request streams through the
// dynamic-replication control loop and the unified transfer API) — and
// reports the headline quantities at the planet row: requests driven
// through simxfer.Submit, the tail latency the popularity policy held,
// goodput and per-site load skew. `make bench-traffic` records the
// output into BENCH_traffic.json.
func BenchmarkTrafficSweep(b *testing.B) {
	var rows []experiments.TrafficResult
	for i := 0; i < b.N; i++ {
		var err error
		rows, _, err = experiments.ExtensionTraffic(benchSeed)
		if err != nil {
			b.Fatal(err)
		}
	}
	top := rows[0]
	for _, r := range rows {
		if r.Requests > top.Requests {
			top = r
		}
	}
	b.ReportMetric(float64(top.Sites), "sites")
	b.ReportMetric(float64(top.Submitted()), "submitted")
	b.ReportMetric(float64(top.Completed), "completed")
	b.ReportMetric(top.P99, "p99-sec")
	b.ReportMetric(top.GoodputMbps, "goodput-mbps")
	b.ReportMetric(top.SiteSkew, "site-skew")
	b.ReportMetric(float64(top.Replications), "replications")
}
