GO ?= go

# Label under which `make bench` / `make bench-netsim` records results in
# BENCH_netsim.json (see docs/PERFORMANCE.md).
BENCH_LABEL ?= local

.PHONY: all build vet lint test race bench bench-netsim figures examples clean

all: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...
	$(GO) run ./cmd/gridlint ./...

# Domain-specific static analysis (wallclock, determinism,
# lockedcallback, errcheck) — see docs/STATIC_ANALYSIS.md.
lint:
	$(GO) run ./cmd/gridlint ./...

test:
	$(GO) test ./... -timeout 600s

race:
	$(GO) test -race ./... -timeout 600s

bench: bench-netsim
	$(GO) test -bench=. -benchmem -timeout 1200s

# Record the simulation-core benchmarks into BENCH_netsim.json so future
# changes have a perf trajectory to compare against. Same label replaces,
# new labels append: run with BENCH_LABEL=<change-id> before and after an
# optimization (docs/PERFORMANCE.md documents the workflow).
bench-netsim:
	$(GO) test -run='^$$' -bench='Netsim|Reallocate|RouteCold' -benchmem -timeout 600s . ./internal/netsim \
		| $(GO) run ./cmd/benchjson -label '$(BENCH_LABEL)' -out BENCH_netsim.json

# Regenerate every paper artifact (Fig. 3, Fig. 4, Table 1, ablations,
# extensions) in the text form EXPERIMENTS.md quotes.
figures:
	$(GO) run ./cmd/gridbench -all

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/parallel-transfer
	$(GO) run ./examples/bioinformatics
	$(GO) run ./examples/thirdparty-striped
	$(GO) run ./examples/coallocation
	$(GO) run ./examples/failover

clean:
	$(GO) clean ./...
