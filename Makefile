GO ?= go

.PHONY: all build vet lint test race bench figures examples clean

all: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...
	$(GO) run ./cmd/gridlint ./...

# Domain-specific static analysis (wallclock, determinism,
# lockedcallback, errcheck) — see docs/STATIC_ANALYSIS.md.
lint:
	$(GO) run ./cmd/gridlint ./...

test:
	$(GO) test ./... -timeout 600s

race:
	$(GO) test -race ./... -timeout 600s

bench:
	$(GO) test -bench=. -benchmem -timeout 1200s

# Regenerate every paper artifact (Fig. 3, Fig. 4, Table 1, ablations,
# extensions) in the text form EXPERIMENTS.md quotes.
figures:
	$(GO) run ./cmd/gridbench -all

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/parallel-transfer
	$(GO) run ./examples/bioinformatics
	$(GO) run ./examples/thirdparty-striped
	$(GO) run ./examples/coallocation
	$(GO) run ./examples/failover

clean:
	$(GO) clean ./...
