GO ?= go

# Label under which `make bench` / `make bench-netsim` records results in
# BENCH_netsim.json (see docs/PERFORMANCE.md).
BENCH_LABEL ?= local

.PHONY: all build vet lint test race bench bench-netsim bench-suite bench-select bench-faults bench-scale bench-traffic bench-diff bench-diff-netsim bench-diff-suite bench-diff-select bench-diff-faults bench-diff-scale bench-diff-traffic figures examples clean

all: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...
	$(GO) run ./cmd/gridlint ./...

# Domain-specific static analysis (wallclock, determinism, seedflow,
# lockedcallback, enginesharing, errcheck, snapshotdiscipline,
# eventlifetime) — see docs/STATIC_ANALYSIS.md.
lint:
	$(GO) run ./cmd/gridlint ./...

test:
	$(GO) test ./... -timeout 600s

race:
	$(GO) test -race ./... -timeout 600s

bench: bench-netsim
	$(GO) test -bench=. -benchmem -timeout 1200s

# Record the simulation-core benchmarks into BENCH_netsim.json so future
# changes have a perf trajectory to compare against. Same label replaces,
# new labels append: run with BENCH_LABEL=<change-id> before and after an
# optimization (docs/PERFORMANCE.md documents the workflow).
bench-netsim:
	$(GO) test -run='^$$' -bench='Netsim|Reallocate|RouteTree|AddLinkBulk|ShardedPlanet' -benchmem -timeout 600s . ./internal/netsim \
		| $(GO) run ./cmd/benchjson -label '$(BENCH_LABEL)' -out BENCH_netsim.json

# Record the full-suite harness benchmark (the `gridbench -all` workload
# on the deterministic worker pool, sequential vs parallel) into
# BENCH_suite.json. The parallel/sequential wall-time ratio is the
# speedup the runner delivers on this machine; label meaningfully, e.g.
# BENCH_LABEL=ci-8core (docs/PERFORMANCE.md documents the workflow).
bench-suite:
	$(GO) test -run='^$$' -bench='GridbenchAll' -benchmem -timeout 1200s . \
		| $(GO) run ./cmd/benchjson -label '$(BENCH_LABEL)' -out BENCH_suite.json

# Record the selection-throughput benchmark (pull-per-query vs pinned
# gridstate snapshot, 1 and 8 concurrent selectors) into
# BENCH_select.json. The snapshot/pull ratio is the batch-Rank speedup on
# this machine (docs/PERFORMANCE.md documents the workflow).
bench-select:
	$(GO) test -run='^$$' -bench='SelectionThroughput' -benchmem -timeout 600s . \
		| $(GO) run ./cmd/benchjson -label '$(BENCH_LABEL)' -out BENCH_select.json

# Regression gates: re-run the benchmarks and compare against the
# committed baselines without touching them; exit non-zero when any
# compared metric regresses by more than 15%. allocs/op is
# machine-independent; ns/op only means something on hardware comparable
# to the baseline's, so override BENCH_DIFF_METRICS locally as needed.
BENCH_DIFF_METRICS ?= allocs/op

bench-diff: bench-diff-netsim bench-diff-suite bench-diff-select bench-diff-faults bench-diff-scale bench-diff-traffic

bench-diff-netsim:
	$(GO) test -run='^$$' -bench='Netsim|Reallocate|RouteTree|AddLinkBulk|ShardedPlanet' -benchmem -timeout 600s . ./internal/netsim \
		| $(GO) run ./cmd/benchjson -diff -against pr9-sharded-engine \
			-metrics '$(BENCH_DIFF_METRICS)' -out BENCH_netsim.json

# Gate the full-suite harness benchmark against its committed baseline
# the same way (GridbenchAll sequential vs parallel, BENCH_suite.json).
bench-diff-suite:
	$(GO) test -run='^$$' -bench='GridbenchAll' -benchmem -timeout 1200s . \
		| $(GO) run ./cmd/benchjson -diff -against container-1cpu \
			-metrics '$(BENCH_DIFF_METRICS)' -out BENCH_suite.json

bench-diff-select:
	$(GO) test -run='^$$' -bench='SelectionThroughput' -benchmem -timeout 600s . \
		| $(GO) run ./cmd/benchjson -diff -against container-1cpu \
			-metrics '$(BENCH_DIFF_METRICS)' -out BENCH_select.json

# Record the fault-tolerance sweep (the `gridbench -faults` workload:
# no-retry vs retry-same vs failover-reselect under rising fault
# intensity) into BENCH_faults.json. The per-policy completed counts at
# the top intensity are the headline (docs/PERFORMANCE.md documents the
# workflow).
bench-faults:
	$(GO) test -run='^$$' -bench='FaultsSweep' -benchmem -timeout 600s . \
		| $(GO) run ./cmd/benchjson -label '$(BENCH_LABEL)' -out BENCH_faults.json

# Record the planet-scale sweep (the `gridbench -scale` workload: 20 to
# 200 sites, 400 to 10k hosts, 10k- to million-entry catalogs through
# route trees, the sharded catalog and hierarchical selection) into
# BENCH_scale.json. The 200-site row's dijkstra-savings-x is the
# headline: per-pair Dijkstra runs each tree sweep replaced
# (docs/PERFORMANCE.md documents the workflow).
bench-scale:
	$(GO) test -run='^$$' -bench='ScaleSweep' -benchmem -timeout 1200s . \
		| $(GO) run ./cmd/benchjson -label '$(BENCH_LABEL)' -out BENCH_scale.json

bench-diff-faults:
	$(GO) test -run='^$$' -bench='FaultsSweep' -benchmem -timeout 600s . \
		| $(GO) run ./cmd/benchjson -diff -against container-1cpu \
			-metrics '$(BENCH_DIFF_METRICS)' -out BENCH_faults.json

bench-diff-scale:
	$(GO) test -run='^$$' -bench='ScaleSweep' -benchmem -timeout 1200s . \
		| $(GO) run ./cmd/benchjson -diff -against container-1cpu \
			-metrics '$(BENCH_DIFF_METRICS)' -out BENCH_scale.json

# Record the traffic-plane sweep (the `gridbench -traffic` workload:
# Zipf/diurnal request streams on the metro and 200-site worlds through
# the popularity-driven replication loop and simxfer.Submit) into
# BENCH_traffic.json. The planet row's submitted count and p99 are the
# headline (docs/PERFORMANCE.md documents the workflow).
bench-traffic:
	$(GO) test -run='^$$' -bench='TrafficSweep' -benchmem -timeout 3600s . \
		| $(GO) run ./cmd/benchjson -label '$(BENCH_LABEL)' -out BENCH_traffic.json

bench-diff-traffic:
	$(GO) test -run='^$$' -bench='TrafficSweep' -benchmem -timeout 3600s . \
		| $(GO) run ./cmd/benchjson -diff -against container-1cpu \
			-metrics '$(BENCH_DIFF_METRICS)' -out BENCH_traffic.json

# Regenerate every paper artifact (Fig. 3, Fig. 4, Table 1, ablations,
# extensions) in the text form EXPERIMENTS.md quotes.
figures:
	$(GO) run ./cmd/gridbench -all

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/parallel-transfer
	$(GO) run ./examples/bioinformatics
	$(GO) run ./examples/thirdparty-striped
	$(GO) run ./examples/coallocation
	$(GO) run ./examples/failover

clean:
	$(GO) clean ./...
