// Command gridftpd runs the GridFTP server over real TCP: the in-memory
// grid storage node of this repository. It can preload files from disk or
// synthesize random payloads, and optionally requires GSI authentication.
//
// Example:
//
//	gridftpd -addr 127.0.0.1:2811 -synth /data/file-a=64MiB
//	gridftpd -addr 127.0.0.1:2811 -load ./pub -gsi-ca secret -subject /CN=gridftpd
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand"
	"os"
	"os/signal"
	"path/filepath"
	"strconv"
	"strings"

	"github.com/hpclab/datagrid/internal/ftp"
	"github.com/hpclab/datagrid/internal/gridftp"
	"github.com/hpclab/datagrid/internal/gsi"
)

type synthList []string

func (s *synthList) String() string { return strings.Join(*s, ",") }
func (s *synthList) Set(v string) error {
	*s = append(*s, v)
	return nil
}

func parseSize(s string) (int64, error) {
	mult := int64(1)
	upper := strings.ToUpper(s)
	switch {
	case strings.HasSuffix(upper, "GIB"):
		mult, upper = 1<<30, upper[:len(upper)-3]
	case strings.HasSuffix(upper, "MIB"):
		mult, upper = 1<<20, upper[:len(upper)-3]
	case strings.HasSuffix(upper, "KIB"):
		mult, upper = 1<<10, upper[:len(upper)-3]
	case strings.HasSuffix(upper, "MB"):
		mult, upper = 1_000_000, upper[:len(upper)-2]
	}
	n, err := strconv.ParseInt(strings.TrimSpace(upper), 10, 64)
	if err != nil {
		return 0, fmt.Errorf("bad size %q", s)
	}
	return n * mult, nil
}

func main() {
	var (
		addr       = flag.String("addr", "127.0.0.1:2811", "listen address")
		load       = flag.String("load", "", "directory whose files are preloaded into the in-memory store")
		serveDir   = flag.String("serve-dir", "", "serve this directory directly from disk (production mode)")
		caKey      = flag.String("gsi-ca", "", "virtual-organization CA key enabling AUTH GSI")
		subject    = flag.String("subject", "/CN=gridftpd", "server GSI subject")
		requireGSI = flag.Bool("require-gsi", false, "refuse USER/PASS logins")
		stripes    = flag.Int("stripes", 4, "SPAS stripe count")
		seed       = flag.Int64("seed", 1, "seed for synthesized file content")
		xferlog    = flag.String("xferlog", "", "append wu-ftpd style transfer log lines to this file")
		synth      synthList
	)
	flag.Var(&synth, "synth", "synthesize a file, e.g. /data/file-a=256MB (repeatable)")
	flag.Parse()

	var store ftp.Store = ftp.NewMemStore()
	if *serveDir != "" {
		ds, err := ftp.NewDiskStore(*serveDir)
		if err != nil {
			log.Fatalf("gridftpd: %v", err)
		}
		store = ds
		log.Printf("serving %s from disk", ds.Root())
	}
	mem, _ := store.(*ftp.MemStore)
	rng := rand.New(rand.NewSource(*seed))
	for _, spec := range synth {
		path, sizeStr, ok := strings.Cut(spec, "=")
		if !ok {
			log.Fatalf("gridftpd: bad -synth %q, want path=size", spec)
		}
		size, err := parseSize(sizeStr)
		if err != nil {
			log.Fatalf("gridftpd: %v", err)
		}
		if mem == nil {
			log.Fatal("gridftpd: -synth requires the in-memory store (omit -serve-dir)")
		}
		buf := make([]byte, size)
		rng.Read(buf)
		if err := mem.Put(path, buf); err != nil {
			log.Fatalf("gridftpd: %v", err)
		}
		log.Printf("synthesized %s (%d bytes)", path, size)
	}
	if *load != "" {
		if mem == nil {
			log.Fatal("gridftpd: -load requires the in-memory store (omit -serve-dir)")
		}
		err := filepath.Walk(*load, func(p string, fi os.FileInfo, err error) error {
			if err != nil || fi.IsDir() {
				return err
			}
			data, err := os.ReadFile(p)
			if err != nil {
				return err
			}
			rel, err := filepath.Rel(*load, p)
			if err != nil {
				return err
			}
			vpath := "/" + filepath.ToSlash(rel)
			if err := mem.Put(vpath, data); err != nil {
				return err
			}
			log.Printf("loaded %s (%d bytes)", vpath, len(data))
			return nil
		})
		if err != nil {
			log.Fatalf("gridftpd: loading %s: %v", *load, err)
		}
	}

	cfg := gridftp.ServerConfig{Store: store, Stripes: *stripes, RequireGSI: *requireGSI}
	if *xferlog != "" {
		lf, err := os.OpenFile(*xferlog, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			log.Fatalf("gridftpd: opening xferlog: %v", err)
		}
		defer lf.Close()
		cfg.TransferLog = lf
	}
	if *caKey != "" {
		ca, err := gsi.NewCA([]byte(*caKey))
		if err != nil {
			log.Fatalf("gridftpd: %v", err)
		}
		cred, err := ca.Issue(*subject)
		if err != nil {
			log.Fatalf("gridftpd: %v", err)
		}
		cfg.GSI, err = gsi.NewAuthenticator(ca, cred, *seed)
		if err != nil {
			log.Fatalf("gridftpd: %v", err)
		}
	} else if *requireGSI {
		log.Fatal("gridftpd: -require-gsi needs -gsi-ca")
	}

	srv, err := gridftp.NewServer(cfg)
	if err != nil {
		log.Fatalf("gridftpd: %v", err)
	}
	bound, err := srv.Listen(*addr)
	if err != nil {
		log.Fatalf("gridftpd: %v", err)
	}
	log.Printf("gridftpd listening on %s (%d files, stripes=%d, gsi=%v)",
		bound, len(store.List()), *stripes, cfg.GSI != nil)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt)
	<-sig
	log.Print("shutting down")
	if err := srv.Close(); err != nil {
		log.Printf("gridftpd: close: %v", err)
	}
}
