package main

import "testing"

func TestParseSize(t *testing.T) {
	cases := map[string]int64{
		"1024":   1024,
		"256MB":  256_000_000,
		"64MiB":  64 << 20,
		"2GiB":   2 << 30,
		"128KiB": 128 << 10,
		" 8 ":    8,
	}
	for in, want := range cases {
		got, err := parseSize(in)
		if err != nil || got != want {
			t.Fatalf("parseSize(%q) = %d, %v; want %d", in, got, err, want)
		}
	}
	for _, bad := range []string{"", "x", "MB", "12QB"} {
		if _, err := parseSize(bad); err == nil {
			t.Fatalf("parseSize(%q) should fail", bad)
		}
	}
}

func TestSynthListFlag(t *testing.T) {
	var s synthList
	if err := s.Set("/a=1MB"); err != nil {
		t.Fatal(err)
	}
	if err := s.Set("/b=2MB"); err != nil {
		t.Fatal(err)
	}
	if s.String() != "/a=1MB,/b=2MB" {
		t.Fatalf("String = %q", s.String())
	}
}
