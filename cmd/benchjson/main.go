// Command benchjson converts `go test -bench` text output into a JSON
// benchmark record so the repo keeps a machine-readable perf trajectory.
//
// It reads benchmark output on stdin, parses every "BenchmarkXxx" result
// line (including -benchmem columns and custom ReportMetric units), and
// merges the run into the JSON file named by -out: an existing run with
// the same label is replaced, anything else is preserved and new runs
// append. The benchmark text is echoed to stdout so the tool can sit at
// the end of a pipe without hiding results.
//
//	go test -run='^$' -bench='Netsim' -benchmem . ./internal/netsim |
//	    go run ./cmd/benchjson -label after-foo -out BENCH_netsim.json
//
// See docs/PERFORMANCE.md for the recording/compare workflow.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"sort"
	"strconv"
	"strings"
)

// Benchmark is one parsed benchmark result line.
type Benchmark struct {
	// Name is the benchmark name without the "Benchmark" prefix and
	// without the -GOMAXPROCS suffix, so records compare across machines.
	Name       string `json:"name"`
	Iterations int64  `json:"iterations"`
	// Metrics maps unit -> value, e.g. "ns/op", "B/op", "allocs/op" and
	// any custom b.ReportMetric units.
	Metrics map[string]float64 `json:"metrics"`
}

// Run is one labeled benchmark session.
type Run struct {
	Label      string      `json:"label"`
	GoVersion  string      `json:"go_version"`
	Note       string      `json:"note,omitempty"`
	Benchmarks []Benchmark `json:"benchmarks"`
}

// File is the on-disk record: a sequence of labeled runs, oldest first.
type File struct {
	Comment string `json:"comment"`
	Runs    []Run  `json:"runs"`
}

const fileComment = "benchmark trajectory recorded by cmd/benchjson; see docs/PERFORMANCE.md"

func main() {
	out := flag.String("out", "BENCH_netsim.json", "JSON file to create or merge into")
	label := flag.String("label", "local", "label identifying this run (same label replaces)")
	note := flag.String("note", "", "optional free-form note stored with the run")
	flag.Parse()

	benches, err := parse(os.Stdin, os.Stdout)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	if len(benches) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark lines found on stdin")
		os.Exit(1)
	}
	run := Run{Label: *label, GoVersion: runtime.Version(), Note: *note, Benchmarks: benches}
	if err := merge(*out, run); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "benchjson: recorded %d benchmarks as %q in %s\n", len(benches), *label, *out)
}

// parse scans go test -bench output, echoing every line to echo and
// collecting parsed results. Sub-benchmarks of the same parent merge their
// metric columns under one name when go test splits them across lines.
func parse(r io.Reader, echo io.Writer) ([]Benchmark, error) {
	var out []Benchmark
	byName := map[string]int{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		if echo != nil {
			fmt.Fprintln(echo, line)
		}
		b, ok := parseLine(line)
		if !ok {
			continue
		}
		if i, seen := byName[b.Name]; seen {
			// go test prints one line per benchmark; duplicates mean a
			// repeated run — last one wins.
			out[i] = b
			continue
		}
		byName[b.Name] = len(out)
		out = append(out, b)
	}
	return out, sc.Err()
}

// parseLine parses one result line of the form
//
//	BenchmarkName-8   	     100	  12345 ns/op	  64 B/op	  2 allocs/op
//
// with any number of trailing value/unit metric pairs.
func parseLine(line string) (Benchmark, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
		return Benchmark{}, false
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Benchmark{}, false
	}
	name := strings.TrimPrefix(fields[0], "Benchmark")
	// Strip the -GOMAXPROCS suffix, if present.
	if i := strings.LastIndexByte(name, '-'); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i]
		}
	}
	b := Benchmark{Name: name, Iterations: iters, Metrics: map[string]float64{}}
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Benchmark{}, false
		}
		b.Metrics[fields[i+1]] = v
	}
	if len(b.Metrics) == 0 {
		return Benchmark{}, false
	}
	return b, true
}

// merge loads path (if it exists), replaces the run with the same label or
// appends, and writes the file back with stable formatting.
func merge(path string, run Run) error {
	f := File{Comment: fileComment}
	if data, err := os.ReadFile(path); err == nil {
		if err := json.Unmarshal(data, &f); err != nil {
			return fmt.Errorf("existing %s is not valid benchjson output: %w", path, err)
		}
	} else if !os.IsNotExist(err) {
		return err
	}
	f.Comment = fileComment
	replaced := false
	for i := range f.Runs {
		if f.Runs[i].Label == run.Label {
			f.Runs[i] = run
			replaced = true
			break
		}
	}
	if !replaced {
		f.Runs = append(f.Runs, run)
	}
	for _, r := range f.Runs {
		sort.Slice(r.Benchmarks, func(i, j int) bool { return r.Benchmarks[i].Name < r.Benchmarks[j].Name })
	}
	data, err := json.MarshalIndent(&f, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
