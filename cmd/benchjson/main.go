// Command benchjson converts `go test -bench` text output into a JSON
// benchmark record so the repo keeps a machine-readable perf trajectory.
//
// It reads benchmark output on stdin, parses every "BenchmarkXxx" result
// line (including -benchmem columns and custom ReportMetric units), and
// merges the run into the JSON file named by -out: an existing run with
// the same label is replaced, anything else is preserved and new runs
// append. The benchmark text is echoed to stdout so the tool can sit at
// the end of a pipe without hiding results.
//
//	go test -run='^$' -bench='Netsim' -benchmem . ./internal/netsim |
//	    go run ./cmd/benchjson -label after-foo -out BENCH_netsim.json
//
// With -diff the tool compares instead of recording: the current run on
// stdin is checked against a committed baseline run in the -out file
// (-against selects the label; default is the last recorded run that
// contains each benchmark) and the process exits 1 when any compared
// metric regresses by more than -threshold percent. The baseline file is
// never modified in -diff mode, so CI can gate on it:
//
//	go test -run='^$' -bench='Netsim' -benchmem ./internal/netsim |
//	    go run ./cmd/benchjson -diff -against pr2-optimized \
//	        -metrics allocs/op -out BENCH_netsim.json
//
// See docs/PERFORMANCE.md for the recording/compare workflow.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"sort"
	"strconv"
	"strings"
)

// Benchmark is one parsed benchmark result line.
type Benchmark struct {
	// Name is the benchmark name without the "Benchmark" prefix and
	// without the -GOMAXPROCS suffix, so records compare across machines.
	Name       string `json:"name"`
	Iterations int64  `json:"iterations"`
	// Metrics maps unit -> value, e.g. "ns/op", "B/op", "allocs/op" and
	// any custom b.ReportMetric units.
	Metrics map[string]float64 `json:"metrics"`
}

// Run is one labeled benchmark session.
type Run struct {
	Label      string      `json:"label"`
	GoVersion  string      `json:"go_version"`
	Note       string      `json:"note,omitempty"`
	Benchmarks []Benchmark `json:"benchmarks"`
}

// File is the on-disk record: a sequence of labeled runs, oldest first.
type File struct {
	Comment string `json:"comment"`
	Runs    []Run  `json:"runs"`
}

const fileComment = "benchmark trajectory recorded by cmd/benchjson; see docs/PERFORMANCE.md"

func main() {
	out := flag.String("out", "BENCH_netsim.json", "JSON file to create or merge into (or compare against with -diff)")
	label := flag.String("label", "local", "label identifying this run (same label replaces)")
	note := flag.String("note", "", "optional free-form note stored with the run")
	diff := flag.Bool("diff", false, "compare stdin against the baseline in -out instead of recording; exit 1 on regression")
	against := flag.String("against", "", "with -diff: baseline run label (default: last recorded run containing each benchmark)")
	threshold := flag.Float64("threshold", 15, "with -diff: regression threshold in percent")
	metrics := flag.String("metrics", "ns/op,allocs/op", "with -diff: comma-separated metrics to compare")
	flag.Parse()

	benches, err := parse(os.Stdin, os.Stdout)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	if len(benches) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark lines found on stdin")
		os.Exit(1)
	}
	if *diff {
		regressions, err := compare(*out, benches, *against, *threshold, splitMetrics(*metrics))
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
			os.Exit(1)
		}
		if len(regressions) > 0 {
			for _, r := range regressions {
				fmt.Fprintf(os.Stderr, "benchjson: REGRESSION %s\n", r)
			}
			fmt.Fprintf(os.Stderr, "benchjson: %d regression(s) beyond %.0f%% vs %s\n",
				len(regressions), *threshold, *out)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "benchjson: no regressions beyond %.0f%% vs %s\n", *threshold, *out)
		return
	}
	run := Run{Label: *label, GoVersion: runtime.Version(), Note: *note, Benchmarks: benches}
	if err := merge(*out, run); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "benchjson: recorded %d benchmarks as %q in %s\n", len(benches), *label, *out)
}

func splitMetrics(s string) []string {
	var out []string
	for _, m := range strings.Split(s, ",") {
		if m = strings.TrimSpace(m); m != "" {
			out = append(out, m)
		}
	}
	return out
}

// compare checks the current benchmarks against a baseline run in the
// JSON file at path and returns one description per regressed metric.
// The file is read, never written. A benchmark missing from the baseline
// is skipped (new benchmarks are not regressions); a baseline value of
// zero with a non-zero current value counts as a regression (the ratio
// is unbounded).
func compare(path string, current []Benchmark, against string, threshold float64, metrics []string) ([]string, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var f File
	if err := json.Unmarshal(data, &f); err != nil {
		return nil, fmt.Errorf("%s is not valid benchjson output: %w", path, err)
	}
	if len(f.Runs) == 0 {
		return nil, fmt.Errorf("%s contains no recorded runs", path)
	}
	if against != "" {
		found := false
		for _, r := range f.Runs {
			if r.Label == against {
				found = true
				break
			}
		}
		if !found {
			return nil, fmt.Errorf("%s has no run labeled %q", path, against)
		}
	}
	var regressions []string
	for _, b := range current {
		base, label, ok := baselineFor(f, b.Name, against)
		if !ok {
			continue
		}
		for _, metric := range metrics {
			cur, haveCur := b.Metrics[metric]
			old, haveOld := base.Metrics[metric]
			if !haveCur || !haveOld {
				continue
			}
			if old == 0 {
				if cur > 0 {
					regressions = append(regressions, fmt.Sprintf(
						"%s %s: baseline (%s) is 0, now %g", b.Name, metric, label, cur))
				}
				continue
			}
			if pct := (cur - old) / old * 100; pct > threshold {
				regressions = append(regressions, fmt.Sprintf(
					"%s %s: %g -> %g (+%.1f%% vs %s, threshold %.0f%%)",
					b.Name, metric, old, cur, pct, label, threshold))
			}
		}
	}
	return regressions, nil
}

// baselineFor finds the baseline benchmark: from the run labeled
// `against` when set, otherwise from the newest (last) run that contains
// the benchmark.
func baselineFor(f File, name, against string) (Benchmark, string, bool) {
	for i := len(f.Runs) - 1; i >= 0; i-- {
		r := f.Runs[i]
		if against != "" && r.Label != against {
			continue
		}
		for _, b := range r.Benchmarks {
			if b.Name == name {
				return b, r.Label, true
			}
		}
		if against != "" {
			return Benchmark{}, "", false
		}
	}
	return Benchmark{}, "", false
}

// parse scans go test -bench output, echoing every line to echo and
// collecting parsed results. Sub-benchmarks of the same parent merge their
// metric columns under one name when go test splits them across lines.
func parse(r io.Reader, echo io.Writer) ([]Benchmark, error) {
	var out []Benchmark
	byName := map[string]int{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		if echo != nil {
			fmt.Fprintln(echo, line)
		}
		b, ok := parseLine(line)
		if !ok {
			continue
		}
		if i, seen := byName[b.Name]; seen {
			// go test prints one line per benchmark; duplicates mean a
			// repeated run — last one wins.
			out[i] = b
			continue
		}
		byName[b.Name] = len(out)
		out = append(out, b)
	}
	return out, sc.Err()
}

// parseLine parses one result line of the form
//
//	BenchmarkName-8   	     100	  12345 ns/op	  64 B/op	  2 allocs/op
//
// with any number of trailing value/unit metric pairs.
func parseLine(line string) (Benchmark, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
		return Benchmark{}, false
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Benchmark{}, false
	}
	name := strings.TrimPrefix(fields[0], "Benchmark")
	// Strip the -GOMAXPROCS suffix, if present.
	if i := strings.LastIndexByte(name, '-'); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i]
		}
	}
	b := Benchmark{Name: name, Iterations: iters, Metrics: map[string]float64{}}
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Benchmark{}, false
		}
		b.Metrics[fields[i+1]] = v
	}
	if len(b.Metrics) == 0 {
		return Benchmark{}, false
	}
	return b, true
}

// merge loads path (if it exists), replaces the run with the same label or
// appends, and writes the file back with stable formatting.
func merge(path string, run Run) error {
	f := File{Comment: fileComment}
	if data, err := os.ReadFile(path); err == nil {
		if err := json.Unmarshal(data, &f); err != nil {
			return fmt.Errorf("existing %s is not valid benchjson output: %w", path, err)
		}
	} else if !os.IsNotExist(err) {
		return err
	}
	f.Comment = fileComment
	replaced := false
	for i := range f.Runs {
		if f.Runs[i].Label == run.Label {
			f.Runs[i] = run
			replaced = true
			break
		}
	}
	if !replaced {
		f.Runs = append(f.Runs, run)
	}
	for _, r := range f.Runs {
		sort.Slice(r.Benchmarks, func(i, j int) bool { return r.Benchmarks[i].Name < r.Benchmarks[j].Name })
	}
	data, err := json.MarshalIndent(&f, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
