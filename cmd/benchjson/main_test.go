package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: github.com/hpclab/datagrid
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkNetsimFlowEvents 	      20	    635469 ns/op	   32464 B/op	     263 allocs/op
BenchmarkNetsimStressLargeGrid-8 	       3	 137918883 ns/op	  306456 B/op	    2877 allocs/op
BenchmarkExtensionScale 	       1	1925312875 ns/op	        27.29 sites12-improve-pct
PASS
ok  	github.com/hpclab/datagrid	5.584s
`

func TestParse(t *testing.T) {
	var echo strings.Builder
	benches, err := parse(strings.NewReader(sample), &echo)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(echo.String(), "BenchmarkNetsimFlowEvents") {
		t.Fatal("input was not echoed")
	}
	if len(benches) != 3 {
		t.Fatalf("parsed %d benchmarks, want 3", len(benches))
	}
	fe := benches[0]
	if fe.Name != "NetsimFlowEvents" || fe.Iterations != 20 {
		t.Fatalf("unexpected first benchmark: %+v", fe)
	}
	if fe.Metrics["ns/op"] != 635469 || fe.Metrics["allocs/op"] != 263 {
		t.Fatalf("unexpected metrics: %v", fe.Metrics)
	}
	if benches[1].Name != "NetsimStressLargeGrid" {
		t.Fatalf("GOMAXPROCS suffix not stripped: %q", benches[1].Name)
	}
	if benches[2].Metrics["sites12-improve-pct"] != 27.29 {
		t.Fatalf("custom metric lost: %v", benches[2].Metrics)
	}
}

func TestParseRejectsNonBenchLines(t *testing.T) {
	benches, err := parse(strings.NewReader("PASS\nok x 1s\nBenchmarkBroken abc\n"), nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(benches) != 0 {
		t.Fatalf("parsed %d benchmarks from junk, want 0", len(benches))
	}
}

func TestMergeReplacesSameLabel(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bench.json")
	run1 := Run{Label: "a", GoVersion: "go0", Benchmarks: []Benchmark{
		{Name: "X", Iterations: 1, Metrics: map[string]float64{"ns/op": 100}},
	}}
	if err := merge(path, run1); err != nil {
		t.Fatal(err)
	}
	run2 := Run{Label: "b", GoVersion: "go0", Benchmarks: []Benchmark{
		{Name: "X", Iterations: 1, Metrics: map[string]float64{"ns/op": 50}},
	}}
	if err := merge(path, run2); err != nil {
		t.Fatal(err)
	}
	// Re-recording label "a" must replace in place, not append.
	run1b := run1
	run1b.Benchmarks = []Benchmark{{Name: "X", Iterations: 2, Metrics: map[string]float64{"ns/op": 90}}}
	if err := merge(path, run1b); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var f File
	if err := json.Unmarshal(data, &f); err != nil {
		t.Fatal(err)
	}
	if len(f.Runs) != 2 {
		t.Fatalf("runs = %d, want 2", len(f.Runs))
	}
	if f.Runs[0].Label != "a" || f.Runs[0].Benchmarks[0].Metrics["ns/op"] != 90 {
		t.Fatalf("label a not replaced in place: %+v", f.Runs[0])
	}
	if f.Runs[1].Label != "b" {
		t.Fatalf("label b lost: %+v", f.Runs[1])
	}
}

func writeBaseline(t *testing.T, runs []Run) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "bench.json")
	data, err := json.MarshalIndent(&File{Comment: fileComment, Runs: runs}, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestCompareDetectsRegression(t *testing.T) {
	path := writeBaseline(t, []Run{{
		Label: "container-1cpu",
		Benchmarks: []Benchmark{
			{Name: "SelectionThroughput", Metrics: map[string]float64{"ns/op": 1000, "allocs/op": 100}},
		},
	}})
	current := []Benchmark{
		{Name: "SelectionThroughput", Metrics: map[string]float64{"ns/op": 1100, "allocs/op": 130}},
	}
	regs, err := compare(path, current, "container-1cpu", 15, []string{"ns/op", "allocs/op"})
	if err != nil {
		t.Fatal(err)
	}
	// ns/op +10% is under the 15% threshold; allocs/op +30% is over.
	if len(regs) != 1 || !strings.Contains(regs[0], "allocs/op") {
		t.Fatalf("regressions = %v, want exactly the allocs/op one", regs)
	}
	// The baseline file must never be rewritten in diff mode.
	before, _ := os.ReadFile(path)
	if _, err := compare(path, current, "container-1cpu", 15, []string{"allocs/op"}); err != nil {
		t.Fatal(err)
	}
	after, _ := os.ReadFile(path)
	if string(before) != string(after) {
		t.Fatal("compare modified the baseline file")
	}
}

func TestCompareZeroBaselineIsRegression(t *testing.T) {
	path := writeBaseline(t, []Run{{
		Label: "base",
		Benchmarks: []Benchmark{
			{Name: "X", Metrics: map[string]float64{"allocs/op": 0}},
		},
	}})
	regs, err := compare(path, []Benchmark{{Name: "X", Metrics: map[string]float64{"allocs/op": 3}}},
		"base", 15, []string{"allocs/op"})
	if err != nil {
		t.Fatal(err)
	}
	if len(regs) != 1 {
		t.Fatalf("zero baseline with non-zero current must regress, got %v", regs)
	}
}

func TestCompareDefaultsToNewestRunWithBenchmark(t *testing.T) {
	path := writeBaseline(t, []Run{
		{Label: "old", Benchmarks: []Benchmark{
			{Name: "A", Metrics: map[string]float64{"ns/op": 100}},
			{Name: "B", Metrics: map[string]float64{"ns/op": 100}},
		}},
		{Label: "new", Benchmarks: []Benchmark{
			{Name: "A", Metrics: map[string]float64{"ns/op": 200}},
		}},
	})
	// A compares against "new" (200 -> 210 is fine); B only exists in
	// "old" (100 -> 210 regresses). New benchmarks are skipped.
	current := []Benchmark{
		{Name: "A", Metrics: map[string]float64{"ns/op": 210}},
		{Name: "B", Metrics: map[string]float64{"ns/op": 210}},
		{Name: "C", Metrics: map[string]float64{"ns/op": 999}},
	}
	regs, err := compare(path, current, "", 15, []string{"ns/op"})
	if err != nil {
		t.Fatal(err)
	}
	if len(regs) != 1 || !strings.Contains(regs[0], "B ns/op") {
		t.Fatalf("regressions = %v, want exactly B against the old run", regs)
	}
}

func TestCompareUnknownLabel(t *testing.T) {
	path := writeBaseline(t, []Run{{Label: "base"}})
	if _, err := compare(path, []Benchmark{{Name: "X"}}, "nosuch", 15, []string{"ns/op"}); err == nil {
		t.Fatal("unknown -against label must be an error")
	}
}
