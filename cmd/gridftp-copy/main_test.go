package main

import "testing"

func TestParseEndpoint(t *testing.T) {
	ep, err := parseEndpoint("gsiftp://host:2811/data/f")
	if err != nil || !ep.remote || ep.addr != "host:2811" || ep.path != "/data/f" {
		t.Fatalf("parseEndpoint = %+v, %v", ep, err)
	}
	ep, err = parseEndpoint("ftp://h:21/x")
	if err != nil || !ep.remote {
		t.Fatalf("ftp scheme = %+v, %v", ep, err)
	}
	ep, err = parseEndpoint("./local/file")
	if err != nil || ep.remote || ep.path != "./local/file" {
		t.Fatalf("local = %+v, %v", ep, err)
	}
	if _, err := parseEndpoint("gsiftp://hostonly"); err == nil {
		t.Fatal("URL without path should fail")
	}
}

func TestParsePartial(t *testing.T) {
	off, length, err := parsePartial("100,200")
	if err != nil || off != 100 || length != 200 {
		t.Fatalf("parsePartial = %d, %d, %v", off, length, err)
	}
	for _, bad := range []string{"", "100", "a,b", "1,b"} {
		if _, _, err := parsePartial(bad); err == nil {
			t.Fatalf("parsePartial(%q) should fail", bad)
		}
	}
}
