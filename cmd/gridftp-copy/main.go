// Command gridftp-copy is the globus-url-copy analogue: it moves files
// between local disk and GridFTP servers, including server-to-server
// third-party transfers, with parallel streams, striping and partial
// transfers.
//
// URL forms: gsiftp://HOST:PORT/PATH (remote) or plain paths (local).
//
// Examples:
//
//	gridftp-copy -p 4 gsiftp://127.0.0.1:2811/data/file-a ./file-a
//	gridftp-copy -striped gsiftp://a:2811/big ./big
//	gridftp-copy -p 8 gsiftp://a:2811/src gsiftp://b:2811/dst   (third party)
//	gridftp-copy -partial 1048576,4096 gsiftp://a:2811/big ./chunk
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strconv"
	"strings"
	"time"

	"github.com/hpclab/datagrid/internal/coalloc"
	"github.com/hpclab/datagrid/internal/gridftp"
	"github.com/hpclab/datagrid/internal/gsi"
)

type endpoint struct {
	remote bool
	addr   string // host:port for remote
	path   string
}

func parseEndpoint(s string) (endpoint, error) {
	for _, scheme := range []string{"gsiftp://", "gridftp://", "ftp://"} {
		if strings.HasPrefix(s, scheme) {
			rest := strings.TrimPrefix(s, scheme)
			slash := strings.IndexByte(rest, '/')
			if slash < 0 {
				return endpoint{}, fmt.Errorf("URL %q lacks a path", s)
			}
			return endpoint{remote: true, addr: rest[:slash], path: rest[slash:]}, nil
		}
	}
	return endpoint{path: s}, nil
}

func main() {
	var (
		parallel  = flag.Int("p", 1, "parallel TCP data channels (enables MODE E when > 1)")
		tcpBS     = flag.Int("tcp-bs", 0, "TCP buffer size (SBUF)")
		blockSize = flag.Int("bs", 0, "MODE E block size")
		striped   = flag.Bool("striped", false, "use striped retrieval (SPAS)")
		partial   = flag.String("partial", "", "offset,length partial retrieve (ERET)")
		sources   = flag.String("sources", "", "comma-separated extra replica URLs for co-allocated download")
		chunk     = flag.Int64("chunk", 0, "co-allocation chunk size in bytes")
		user      = flag.String("user", "anonymous", "login user")
		pass      = flag.String("pass", "anon@grid", "login password")
		caKey     = flag.String("gsi-ca", "", "CA key enabling GSI authentication")
		subject   = flag.String("subject", "/CN=gridftp-copy", "client GSI subject")
		timeout   = flag.Duration("timeout", 30*time.Second, "per-operation timeout")
	)
	flag.Parse()
	if flag.NArg() != 2 {
		log.Fatal("usage: gridftp-copy [flags] SRC DST")
	}
	src, err := parseEndpoint(flag.Arg(0))
	if err != nil {
		log.Fatalf("gridftp-copy: %v", err)
	}
	dst, err := parseEndpoint(flag.Arg(1))
	if err != nil {
		log.Fatalf("gridftp-copy: %v", err)
	}

	var auth *gsi.Authenticator
	if *caKey != "" {
		ca, err := gsi.NewCA([]byte(*caKey))
		if err != nil {
			log.Fatalf("gridftp-copy: %v", err)
		}
		cred, err := ca.Issue(*subject)
		if err != nil {
			log.Fatalf("gridftp-copy: %v", err)
		}
		auth, err = gsi.NewAuthenticator(ca, cred, time.Now().UnixNano())
		if err != nil {
			log.Fatalf("gridftp-copy: %v", err)
		}
	}

	connect := func(addr string) *gridftp.Client {
		c, err := gridftp.Dial(addr, gridftp.ClientConfig{
			Timeout:     *timeout,
			Parallelism: *parallel,
			BlockSize:   *blockSize,
			TCPBuffer:   *tcpBS,
		})
		if err != nil {
			log.Fatalf("gridftp-copy: dial %s: %v", addr, err)
		}
		if auth != nil {
			peer, err := c.AuthGSI(auth)
			if err != nil {
				log.Fatalf("gridftp-copy: GSI auth to %s: %v", addr, err)
			}
			log.Printf("authenticated to %s as %s", peer, *subject)
		} else if err := c.Login(*user, *pass); err != nil {
			log.Fatalf("gridftp-copy: login to %s: %v", addr, err)
		}
		if err := c.Setup(); err != nil {
			log.Fatalf("gridftp-copy: setup %s: %v", addr, err)
		}
		return c
	}

	start := time.Now()
	var bytes int64
	switch {
	case src.remote && dst.remote:
		sc, dc := connect(src.addr), connect(dst.addr)
		defer sc.Quit()
		defer dc.Quit()
		sz, err := sc.Size(src.path)
		if err != nil {
			log.Fatalf("gridftp-copy: %v", err)
		}
		if err := gridftp.ThirdParty(sc, src.path, dc, dst.path); err != nil {
			log.Fatalf("gridftp-copy: third-party transfer: %v", err)
		}
		bytes = sz
	case src.remote && *sources != "":
		// Co-allocated download: the named source plus every -sources
		// replica serve chunks of the same file concurrently.
		replicas := append([]endpoint{src}, parseSourceList(*sources)...)
		var srcs []coalloc.Source
		for i, ep := range replicas {
			if !ep.remote {
				log.Fatalf("gridftp-copy: co-allocation source %q must be a URL", ep.path)
			}
			c := connect(ep.addr)
			defer c.Quit()
			s, err := coalloc.NewGridFTPSource(fmt.Sprintf("%s#%d", ep.addr, i), c)
			if err != nil {
				log.Fatalf("gridftp-copy: %v", err)
			}
			srcs = append(srcs, s)
		}
		size, err := srcs[0].(*coalloc.GridFTPSource).Client.Size(src.path)
		if err != nil {
			log.Fatalf("gridftp-copy: %v", err)
		}
		data, stats, err := coalloc.Fetch(srcs, src.path, size, coalloc.Options{ChunkBytes: *chunk})
		if err != nil {
			log.Fatalf("gridftp-copy: co-allocated fetch: %v", err)
		}
		if err := os.WriteFile(dst.path, data, 0o644); err != nil {
			log.Fatalf("gridftp-copy: writing %s: %v", dst.path, err)
		}
		for name, n := range stats.BytesBySource {
			log.Printf("source %s delivered %d bytes (%d chunks)", name, n, stats.ChunksBySource[name])
		}
		bytes = int64(len(data))
	case src.remote:
		c := connect(src.addr)
		defer c.Quit()
		var data []byte
		switch {
		case *striped:
			if !c.ModeE() {
				if err := c.UseModeE(); err != nil {
					log.Fatalf("gridftp-copy: %v", err)
				}
			}
			data, err = c.GetStriped(src.path)
		case *partial != "":
			off, length, perr := parsePartial(*partial)
			if perr != nil {
				log.Fatalf("gridftp-copy: %v", perr)
			}
			data, err = c.GetPartial(src.path, off, length)
		default:
			data, err = c.Get(src.path)
		}
		if err != nil {
			log.Fatalf("gridftp-copy: %v", err)
		}
		if err := os.WriteFile(dst.path, data, 0o644); err != nil {
			log.Fatalf("gridftp-copy: writing %s: %v", dst.path, err)
		}
		bytes = int64(len(data))
	case dst.remote:
		c := connect(dst.addr)
		defer c.Quit()
		data, err := os.ReadFile(src.path)
		if err != nil {
			log.Fatalf("gridftp-copy: reading %s: %v", src.path, err)
		}
		if err := c.Put(dst.path, data); err != nil {
			log.Fatalf("gridftp-copy: %v", err)
		}
		bytes = int64(len(data))
	default:
		log.Fatal("gridftp-copy: at least one endpoint must be a gsiftp:// URL")
	}
	elapsed := time.Since(start)
	log.Printf("transferred %d bytes in %v (%.2f Mb/s, p=%d, striped=%v)",
		bytes, elapsed.Round(time.Millisecond),
		float64(bytes)*8/elapsed.Seconds()/1e6, *parallel, *striped)
}

func parsePartial(s string) (int64, int64, error) {
	offStr, lenStr, ok := strings.Cut(s, ",")
	if !ok {
		return 0, 0, fmt.Errorf("bad -partial %q, want offset,length", s)
	}
	off, err := strconv.ParseInt(offStr, 10, 64)
	if err != nil {
		return 0, 0, err
	}
	length, err := strconv.ParseInt(lenStr, 10, 64)
	if err != nil {
		return 0, 0, err
	}
	return off, length, nil
}

func parseSourceList(s string) []endpoint {
	var out []endpoint
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		ep, err := parseEndpoint(part)
		if err != nil {
			log.Fatalf("gridftp-copy: %v", err)
		}
		out = append(out, ep)
	}
	return out
}
