package main

import (
	"testing"

	"github.com/hpclab/datagrid/internal/nws"
)

func TestParseSeriesKey(t *testing.T) {
	k, err := parseSeriesKey("bandwidth.tcp:hit0->alpha1")
	if err != nil || k.Resource != nws.ResourceBandwidth || k.Source != "hit0" || k.Target != "alpha1" {
		t.Fatalf("parseSeriesKey = %+v, %v", k, err)
	}
	k, err = parseSeriesKey("availableCPU@lz02")
	if err != nil || k.Resource != nws.ResourceCPU || k.Source != "lz02" || k.Target != "" {
		t.Fatalf("host-local key = %+v, %v", k, err)
	}
	for _, bad := range []string{"nope", "res:broken"} {
		if _, err := parseSeriesKey(bad); err == nil {
			t.Fatalf("parseSeriesKey(%q) should fail", bad)
		}
	}
}
