// Command nwsctl inspects a Network Weather Service deployment on the
// simulated paper testbed: registered processes, measurement series,
// forecasts and the expert race. It is the operator's view of the NWS
// substrate.
//
//	nwsctl -runfor 10m -list
//	nwsctl -runfor 10m -series bandwidth.tcp:hit0->alpha1
//	nwsctl -runfor 10m -forecast hit0:alpha1
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"sort"
	"strings"
	"time"

	"github.com/hpclab/datagrid/internal/experiments"
	"github.com/hpclab/datagrid/internal/metrics"
	"github.com/hpclab/datagrid/internal/nws"
)

func main() {
	var (
		seed     = flag.Int64("seed", 42, "simulation seed")
		runfor   = flag.Duration("runfor", 10*time.Minute, "virtual time to run the deployment")
		list     = flag.Bool("list", false, "list nameserver registrations")
		series   = flag.String("series", "", "print a measurement series, e.g. bandwidth.tcp:hit0->alpha1")
		forecast = flag.String("forecast", "", "forecast bandwidth for src:dst, e.g. hit0:alpha1")
		tail     = flag.Int("tail", 12, "series samples to show")
		save     = flag.String("save", "", "write the NWS memory journal to this file")
		load     = flag.String("load", "", "preload a previously saved memory journal")
	)
	flag.Parse()

	env, err := experiments.NewEnv(*seed, true)
	if err != nil {
		log.Fatalf("nwsctl: %v", err)
	}
	if err := env.Engine.RunUntil(*runfor); err != nil {
		log.Fatalf("nwsctl: %v", err)
	}
	dep := env.Deploy

	if *load != "" {
		f, err := os.Open(*load)
		if err != nil {
			log.Fatalf("nwsctl: %v", err)
		}
		n, err := dep.NWS.Load(f)
		f.Close()
		if err != nil {
			log.Fatalf("nwsctl: loading journal: %v", err)
		}
		fmt.Printf("loaded %d measurements from %s\n", n, *load)
	}
	if *save != "" {
		f, err := os.Create(*save)
		if err != nil {
			log.Fatalf("nwsctl: %v", err)
		}
		n, err := dep.NWS.Save(f)
		cerr := f.Close()
		if err != nil || cerr != nil {
			log.Fatalf("nwsctl: saving journal: %v %v", err, cerr)
		}
		fmt.Printf("saved %d measurements to %s\n", n, *save)
	}

	ran := *save != "" || *load != ""
	if *list {
		ran = true
		tb := metrics.NewTable("NWS registrations", "name", "kind", "host", "resource")
		for _, r := range dep.NameServer.List("") {
			tb.AddRow(r.Name, string(r.Kind), r.Host, r.Attrs["resource"])
		}
		fmt.Println(tb.String())
	}
	if *series != "" {
		ran = true
		key, err := parseSeriesKey(*series)
		if err != nil {
			log.Fatalf("nwsctl: %v", err)
		}
		hist, err := dep.NWS.History(key)
		if err != nil {
			log.Fatalf("nwsctl: %v", err)
		}
		if len(hist) > *tail {
			hist = hist[len(hist)-*tail:]
		}
		tb := metrics.NewTable("series "+key.String(), "t", "value")
		for _, m := range hist {
			tb.AddRow(m.At.String(), fmt.Sprintf("%.3f", m.Value))
		}
		fmt.Println(tb.String())
	}
	if *forecast != "" {
		ran = true
		src, dst, ok := strings.Cut(*forecast, ":")
		if !ok {
			log.Fatal("nwsctl: -forecast wants src:dst")
		}
		key := nws.SeriesKey{Resource: nws.ResourceBandwidth, Source: src, Target: dst}
		fc, err := dep.NWS.Forecast(key)
		if err != nil {
			log.Fatalf("nwsctl: %v", err)
		}
		fmt.Printf("forecast %s: %.3f Mb/s (expert %s, mse %.4f over %d samples)\n",
			key, fc.Value, fc.Expert, fc.MSE, fc.N)
		fmt.Printf("MAE winner: %.3f Mb/s (expert %s, mae %.4f)\n", fc.MAEValue, fc.MAEExpert, fc.MAE)
	}
	if !ran {
		// Default: dump every known series with its latest value.
		tb := metrics.NewTable("NWS series", "series", "samples", "latest")
		keys := dep.NWS.Keys()
		sort.Slice(keys, func(i, j int) bool { return keys[i].String() < keys[j].String() })
		for _, k := range keys {
			last, err := dep.NWS.Latest(k)
			if err != nil {
				continue
			}
			tb.AddRow(k.String(), fmt.Sprintf("%d", dep.NWS.Len(k)), fmt.Sprintf("%.3f", last.Value))
		}
		fmt.Println(tb.String())
	}
}

func parseSeriesKey(s string) (nws.SeriesKey, error) {
	res, rest, ok := strings.Cut(s, ":")
	if !ok {
		// Host-local resource form: resource@host.
		r, h, ok := strings.Cut(s, "@")
		if !ok {
			return nws.SeriesKey{}, fmt.Errorf("bad series %q", s)
		}
		return nws.SeriesKey{Resource: r, Source: h}, nil
	}
	src, dst, ok := strings.Cut(rest, "->")
	if !ok {
		return nws.SeriesKey{}, fmt.Errorf("bad series %q, want resource:src->dst", s)
	}
	return nws.SeriesKey{Resource: res, Source: src, Target: dst}, nil
}
