// Command replicacost is the terminal analogue of the paper's Fig. 5 GUI:
// it runs the monitored testbed, samples every replica candidate's
// cost-model score over time, prints the per-site cost series, the
// sliding-window averages for an adjustable time scale, and the sorted
// cost list (the "Cost button" view).
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"sort"
	"time"

	"github.com/hpclab/datagrid/internal/experiments"
	"github.com/hpclab/datagrid/internal/metrics"
)

func main() {
	var (
		seed      = flag.Int64("seed", 42, "simulation seed")
		span      = flag.Duration("span", 2*time.Minute, "observation window (virtual time)")
		period    = flag.Duration("period", 10*time.Second, "sampling period")
		timescale = flag.Int("timescale", 6, "sliding-average window in samples (the Fig. 5 scroll bar)")
	)
	flag.Parse()
	if *timescale <= 0 {
		log.Fatal("replicacost: -timescale must be positive")
	}

	points, err := experiments.CostSeries(*seed, *span, *period)
	if err != nil {
		log.Fatalf("replicacost: %v", err)
	}

	byHost := map[string][]experiments.CostPoint{}
	var hosts []string
	for _, p := range points {
		if _, ok := byHost[p.Host]; !ok {
			hosts = append(hosts, p.Host)
		}
		byHost[p.Host] = append(byHost[p.Host], p)
	}
	sort.Strings(hosts)

	// Cost over time, one series per candidate (Fig. 5a).
	var series []metrics.Series
	for _, h := range hosts {
		s := metrics.Series{Name: h}
		for _, p := range byHost[h] {
			s.AddPoint(p.At.Seconds(), p.Score)
		}
		series = append(series, s)
	}
	rendered, err := metrics.RenderSeries(
		fmt.Sprintf("Replica costs toward alpha1 (seed %d)", *seed),
		"t (s)", "cost", series)
	if err != nil {
		log.Fatalf("replicacost: %v", err)
	}
	fmt.Println(rendered)

	// Sliding-window average at the selected time scale (Fig. 5b).
	avg := metrics.NewTable(
		fmt.Sprintf("Average cost over the last %d samples (time scale = %v)",
			*timescale, time.Duration(*timescale)*(*period)),
		"host", "avg cost")
	type hostAvg struct {
		host string
		mean float64
	}
	var avgs []hostAvg
	for _, h := range hosts {
		w, err := metrics.NewWindow(*timescale)
		if err != nil {
			log.Fatalf("replicacost: %v", err)
		}
		for _, p := range byHost[h] {
			w.Push(p.Score)
		}
		m, err := w.Mean()
		if err != nil {
			log.Fatalf("replicacost: %v", err)
		}
		avgs = append(avgs, hostAvg{h, m})
	}
	for _, a := range avgs {
		avg.AddRow(a.host, fmt.Sprintf("%.2f", a.mean))
	}
	fmt.Println(avg.String())

	// Sorted cost list, best replica first (the Cost button).
	sort.Slice(avgs, func(i, j int) bool { return avgs[i].mean > avgs[j].mean })
	sorted := metrics.NewTable("Replicas sorted by cost (best first)", "rank", "host", "cost")
	for i, a := range avgs {
		sorted.AddRow(fmt.Sprintf("%d", i+1), a.host, fmt.Sprintf("%.2f", a.mean))
	}
	fmt.Println(sorted.String())
	os.Exit(0)
}
