// Command replicacost is the terminal analogue of the paper's Fig. 5 GUI:
// it runs the monitored testbed, samples every replica candidate's
// cost-model score over time, prints the per-site cost series, the
// sliding-window averages for an adjustable time scale, and the sorted
// cost list (the "Cost button" view). Each sampling row is scored against
// one pinned grid-state snapshot; the epoch range is printed so the views
// can be correlated with the monitoring stream.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"time"

	"github.com/hpclab/datagrid/internal/experiments"
	"github.com/hpclab/datagrid/internal/metrics"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("replicacost", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		seed      = fs.Int64("seed", 42, "simulation seed")
		span      = fs.Duration("span", 2*time.Minute, "observation window (virtual time)")
		period    = fs.Duration("period", 10*time.Second, "sampling period")
		timescale = fs.Int("timescale", 6, "sliding-average window in samples (the Fig. 5 scroll bar)")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *timescale <= 0 {
		fmt.Fprintln(stderr, "replicacost: -timescale must be positive")
		return 2
	}

	points, err := experiments.CostSeries(*seed, *span, *period)
	if err != nil {
		fmt.Fprintf(stderr, "replicacost: %v\n", err)
		return 1
	}
	return render(points, *seed, *period, *timescale, stdout, stderr)
}

// render prints the three Fig. 5 views from a sampled cost series.
func render(points []experiments.CostPoint, seed int64, period time.Duration, timescale int, stdout, stderr io.Writer) int {
	byHost := map[string][]experiments.CostPoint{}
	var hosts []string
	for _, p := range points {
		if _, ok := byHost[p.Host]; !ok {
			hosts = append(hosts, p.Host)
		}
		byHost[p.Host] = append(byHost[p.Host], p)
	}
	sort.Strings(hosts)

	// Cost over time, one series per candidate (Fig. 5a).
	var series []metrics.Series
	for _, h := range hosts {
		s := metrics.Series{Name: h}
		for _, p := range byHost[h] {
			s.AddPoint(p.At.Seconds(), p.Score)
		}
		series = append(series, s)
	}
	rendered, err := metrics.RenderSeries(
		fmt.Sprintf("Replica costs toward alpha1 (seed %d)", seed),
		"t (s)", "cost", series)
	if err != nil {
		fmt.Fprintf(stderr, "replicacost: %v\n", err)
		return 1
	}
	fmt.Fprintln(stdout, rendered)

	// Snapshot provenance: which grid-state epochs the samples came from.
	if len(points) > 0 {
		lo, hi := points[0].Epoch, points[0].Epoch
		seen := map[uint64]bool{}
		for _, p := range points {
			if p.Epoch < lo {
				lo = p.Epoch
			}
			if p.Epoch > hi {
				hi = p.Epoch
			}
			seen[p.Epoch] = true
		}
		fmt.Fprintf(stdout, "grid-state snapshots: epochs %d..%d (%d distinct epochs over %d samples)\n\n",
			lo, hi, len(seen), len(points))
	}

	// Sliding-window average at the selected time scale (Fig. 5b).
	avg := metrics.NewTable(
		fmt.Sprintf("Average cost over the last %d samples (time scale = %v)",
			timescale, time.Duration(timescale)*period),
		"host", "avg cost")
	type hostAvg struct {
		host string
		mean float64
	}
	var avgs []hostAvg
	for _, h := range hosts {
		w, err := metrics.NewWindow(timescale)
		if err != nil {
			fmt.Fprintf(stderr, "replicacost: %v\n", err)
			return 1
		}
		for _, p := range byHost[h] {
			w.Push(p.Score)
		}
		m, err := w.Mean()
		if err != nil {
			fmt.Fprintf(stderr, "replicacost: %v\n", err)
			return 1
		}
		avgs = append(avgs, hostAvg{h, m})
	}
	for _, a := range avgs {
		avg.AddRow(a.host, fmt.Sprintf("%.2f", a.mean))
	}
	fmt.Fprintln(stdout, avg.String())

	// Sorted cost list, best replica first (the Cost button).
	sort.Slice(avgs, func(i, j int) bool { return avgs[i].mean > avgs[j].mean })
	sorted := metrics.NewTable("Replicas sorted by cost (best first)", "rank", "host", "cost")
	for i, a := range avgs {
		sorted.AddRow(fmt.Sprintf("%d", i+1), a.host, fmt.Sprintf("%.2f", a.mean))
	}
	fmt.Fprintln(stdout, sorted.String())
	return 0
}
