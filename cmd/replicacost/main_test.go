package main

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"github.com/hpclab/datagrid/internal/experiments"
)

// fixedPoints is a hand-built cost series over two snapshot epochs — two
// sampling rows of three candidates each, as CostSeries would produce.
func fixedPoints() []experiments.CostPoint {
	return []experiments.CostPoint{
		{At: 0, Host: "alpha4", Score: 90.5, Epoch: 7},
		{At: 0, Host: "hit0", Score: 62.1, Epoch: 7},
		{At: 0, Host: "lz02", Score: 18.3, Epoch: 7},
		{At: 10 * time.Second, Host: "alpha4", Score: 88.0, Epoch: 8},
		{At: 10 * time.Second, Host: "hit0", Score: 64.9, Epoch: 8},
		{At: 10 * time.Second, Host: "lz02", Score: 20.1, Epoch: 8},
	}
}

func TestRenderFixedSnapshotSeries(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := render(fixedPoints(), 42, 10*time.Second, 2, &stdout, &stderr); code != 0 {
		t.Fatalf("render exited %d, stderr: %s", code, stderr.String())
	}
	out := stdout.String()
	for _, want := range []string{
		"Replica costs toward alpha1 (seed 42)",
		"grid-state snapshots: epochs 7..8 (2 distinct epochs over 6 samples)",
		"Average cost over the last 2 samples",
		"Replicas sorted by cost (best first)",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output lacks %q\n%s", want, out)
		}
	}
	// The sorted cost list must rank alpha4 first: its sliding-window
	// average (89.25) dominates both others.
	rankIdx := strings.Index(out, "Replicas sorted by cost")
	ranked := out[rankIdx:]
	if !strings.Contains(ranked, "alpha4") || strings.Index(ranked, "alpha4") > strings.Index(ranked, "hit0") {
		t.Errorf("alpha4 should rank before hit0:\n%s", ranked)
	}
}

func TestRunRejectsBadTimescale(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-timescale", "0"}, &stdout, &stderr); code != 2 {
		t.Fatalf("run with -timescale 0 exited %d, want 2", code)
	}
	if !strings.Contains(stderr.String(), "timescale") {
		t.Errorf("stderr should mention timescale: %s", stderr.String())
	}
}

func TestRunEndToEndShortSeries(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the monitored testbed")
	}
	var stdout, stderr bytes.Buffer
	code := run([]string{"-seed", "42", "-span", "30s", "-period", "10s", "-timescale", "2"}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("run exited %d, stderr: %s", code, stderr.String())
	}
	if !strings.Contains(stdout.String(), "grid-state snapshots: epochs") {
		t.Errorf("output lacks snapshot epoch line:\n%s", stdout.String())
	}
}
