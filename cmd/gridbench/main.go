// Command gridbench regenerates the paper's evaluation artifacts — Fig. 3,
// Fig. 4, Table 1 — and the repository's ablation and extension
// experiments, printing each in the same rows/series form the paper
// reports.
//
//	gridbench -fig 3
//	gridbench -fig 4
//	gridbench -table 1
//	gridbench -ablations
//	gridbench -extensions
//	gridbench -all
//
// Experiments run concurrently on a deterministic worker pool: -parallel N
// sets the pool size (1 reproduces the historical sequential execution),
// and the output is byte-identical at every N. -shards N additionally
// partitions each large simulation across N region-sharded engines under
// conservative time-windowed sync (1 = the historical single-engine
// path); output is byte-identical at every shard count too. -trials T
// replicates each selected experiment under T independent seeds and
// reports each metric as mean ± 95% confidence interval; the published
// numbers remain the single-trial seed-42 run.
package main

import (
	"encoding/csv"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"strconv"

	"github.com/hpclab/datagrid/internal/experiments"
	"github.com/hpclab/datagrid/internal/workload"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is the testable entry point: it parses args, executes the selected
// experiments and writes results to stdout, failures to stderr. Unlike
// the historical behavior (abort on the first failed experiment), every
// failure is collected and reported at the end so one broken experiment
// cannot hide the others; the exit code is non-zero if any failed.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("gridbench", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		fig        = fs.Int("fig", 0, "figure number to regenerate (3 or 4)")
		table      = fs.Int("table", 0, "table number to regenerate (1)")
		ablations  = fs.Bool("ablations", false, "run the ablation studies")
		extensions = fs.Bool("extensions", false, "run the extension experiments")
		faults     = fs.Bool("faults", false, "run the fault-tolerance sweep (not part of -all)")
		scale      = fs.Bool("scale", false, "run the planet-scale sweep (not part of -all)")
		traffic    = fs.Bool("traffic", false, "run the traffic-plane sweep (not part of -all)")
		all        = fs.Bool("all", false, "run everything except the fault-tolerance, planet-scale and traffic sweeps")
		asCSV      = fs.Bool("csv", false, "emit the selected figure/table as CSV (for plotting)")
		seed       = fs.Int64("seed", 42, "simulation seed")
		parallel   = fs.Int("parallel", runtime.NumCPU(), "worker pool size (1 = sequential; output is identical at any value)")
		shards     = fs.Int("shards", 1, "region-sharded engines per large simulation (1 = historical single-engine path; output is identical at any value)")
		trials     = fs.Int("trials", 1, "independent seeds per experiment; >1 reports mean ± 95% CI")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *parallel < 1 {
		fmt.Fprintf(stderr, "gridbench: -parallel must be >= 1, got %d\n", *parallel)
		return 2
	}
	if *shards < 1 {
		fmt.Fprintf(stderr, "gridbench: -shards must be >= 1, got %d\n", *shards)
		return 2
	}
	if *trials < 1 {
		fmt.Fprintf(stderr, "gridbench: -trials must be >= 1, got %d\n", *trials)
		return 2
	}

	if *asCSV {
		if err := emitCSV(*fig, *table, *faults, *scale, *traffic, *seed, *parallel, *shards, stdout); err != nil {
			fmt.Fprintf(stderr, "gridbench: %v\n", err)
			return 1
		}
		return 0
	}

	entries := selectEntries(*all, *fig, *table, *ablations, *extensions, *faults, *scale, *traffic)
	if len(entries) == 0 {
		fs.Usage()
		return 2
	}

	var failures []string
	if *trials > 1 {
		for _, e := range entries {
			rep, err := experiments.Replicate(e, *seed, *trials, *parallel, experiments.WithShards(*shards))
			if err != nil {
				failures = append(failures, fmt.Sprintf("%s: %v", e.Name, err))
				continue
			}
			fmt.Fprintln(stdout, rep.Table())
		}
	} else {
		results, _ := experiments.RunEntries(entries, *seed, *parallel, experiments.WithShards(*shards))
		for _, r := range results {
			if r.Err != nil {
				failures = append(failures, fmt.Sprintf("%s: %v", r.Name, r.Err))
				continue
			}
			fmt.Fprintln(stdout, r.Output)
		}
	}
	for _, f := range failures {
		fmt.Fprintf(stderr, "gridbench: %s\n", f)
	}
	if len(failures) > 0 {
		fmt.Fprintf(stderr, "gridbench: %d of %d experiments failed\n", len(failures), len(entries))
		return 1
	}
	return 0
}

// selectEntries filters the suite registry down to the flag selection,
// preserving registry (historical -all) order. The fault-tolerance,
// planet-scale and traffic sweeps are opt-in only: -all keeps printing
// exactly what it always has, so its output stays byte-comparable
// across releases.
func selectEntries(all bool, fig, table int, ablations, extensions, faults, scale, traffic bool) []experiments.SuiteEntry {
	var out []experiments.SuiteEntry
	for _, e := range experiments.Suite() {
		keep := all
		switch e.Group {
		case experiments.GroupFigure3:
			keep = keep || fig == 3
		case experiments.GroupFigure4:
			keep = keep || fig == 4
		case experiments.GroupTable1:
			keep = keep || table == 1
		case experiments.GroupAblations:
			keep = keep || ablations
		case experiments.GroupExtensions:
			keep = keep || extensions
		case experiments.GroupFaults:
			keep = faults
		case experiments.GroupScale:
			keep = scale
		case experiments.GroupTraffic:
			keep = traffic
		}
		if keep {
			out = append(out, e)
		}
	}
	return out
}

// emitCSV writes the selected artifact's structured rows as CSV.
func emitCSV(fig, table int, faults, scale, traffic bool, seed int64, workers, shards int, out io.Writer) error {
	w := csv.NewWriter(out)
	defer w.Flush()
	opts := []experiments.Option{experiments.WithWorkers(workers), experiments.WithShards(shards)}
	switch {
	case fig == 3:
		rows, _, err := experiments.Figure3(seed, opts...)
		if err != nil {
			return err
		}
		if err := w.Write([]string{"size_mb", "ftp_sec", "gridftp_sec"}); err != nil {
			return err
		}
		for _, r := range rows {
			if err := w.Write([]string{
				strconv.FormatInt(r.SizeMB, 10),
				strconv.FormatFloat(r.FTPSeconds, 'f', 3, 64),
				strconv.FormatFloat(r.GridFTPSeconds, 'f', 3, 64),
			}); err != nil {
				return err
			}
		}
	case fig == 4:
		series, _, err := experiments.Figure4(seed, opts...)
		if err != nil {
			return err
		}
		if err := w.Write([]string{"streams", "size_mb", "sec"}); err != nil {
			return err
		}
		for _, s := range series {
			for _, size := range workload.PaperFileSizesMB {
				if err := w.Write([]string{
					strconv.Itoa(s.Streams),
					strconv.FormatInt(size, 10),
					strconv.FormatFloat(s.SecondsBySizeMB[size], 'f', 3, 64),
				}); err != nil {
					return err
				}
			}
		}
	case table == 1:
		res, _, err := experiments.Table1(seed, opts...)
		if err != nil {
			return err
		}
		if err := w.Write([]string{"host", "bw_pct", "cpu_idle_pct", "io_idle_pct", "score", "transfer_sec"}); err != nil {
			return err
		}
		for _, c := range res.Candidates {
			if err := w.Write([]string{
				c.Host,
				strconv.FormatFloat(c.BWPercent, 'f', 2, 64),
				strconv.FormatFloat(c.CPUIdle, 'f', 2, 64),
				strconv.FormatFloat(c.IOIdle, 'f', 2, 64),
				strconv.FormatFloat(c.Score, 'f', 2, 64),
				strconv.FormatFloat(c.TransferSeconds, 'f', 2, 64),
			}); err != nil {
				return err
			}
		}
	case faults:
		rows, _, err := experiments.ExtensionFaults(seed, opts...)
		if err != nil {
			return err
		}
		if err := w.Write([]string{"intensity", "policy", "completed", "failed", "mean_sec", "attempts"}); err != nil {
			return err
		}
		for _, r := range rows {
			if err := w.Write([]string{
				strconv.Itoa(r.Intensity),
				r.Policy,
				strconv.Itoa(r.Completed),
				strconv.Itoa(r.Failed),
				strconv.FormatFloat(r.MeanSeconds, 'f', 3, 64),
				strconv.Itoa(r.Attempts),
			}); err != nil {
				return err
			}
		}
	case scale:
		rows, _, err := experiments.ExtensionPlanetScale(seed, opts...)
		if err != nil {
			return err
		}
		if err := w.Write([]string{
			"grid", "sites", "hosts", "regions", "files", "queries", "flows",
			"tree_builds", "pair_dijkstras", "dijkstra_savings", "regions_consulted",
			"hosts_scanned", "max_single_rank", "mean_xfer_sec",
			"realloc_events", "realloc_rounds", "flows_scanned",
			"comps_dirtied", "max_comp_flows", "max_round_flows",
		}); err != nil {
			return err
		}
		for _, r := range rows {
			if err := w.Write([]string{
				r.Label,
				strconv.Itoa(r.Sites),
				strconv.Itoa(r.Hosts),
				strconv.Itoa(r.Regions),
				strconv.Itoa(r.Files),
				strconv.Itoa(r.Queries),
				strconv.Itoa(r.Flows),
				strconv.FormatUint(r.TreeBuilds, 10),
				strconv.FormatUint(r.PathBuilds, 10),
				strconv.FormatFloat(r.DijkstraSavings(), 'f', 1, 64),
				strconv.FormatUint(r.RegionsConsulted, 10),
				strconv.FormatUint(r.HostsScanned, 10),
				strconv.Itoa(r.MaxSingleRank),
				strconv.FormatFloat(r.MeanTransferSec, 'f', 3, 64),
				strconv.FormatUint(r.ReallocEvents, 10),
				strconv.FormatUint(r.ReallocRounds, 10),
				strconv.FormatUint(r.FlowsScanned, 10),
				strconv.FormatUint(r.ComponentsDirtied, 10),
				strconv.Itoa(r.MaxComponentFlows),
				strconv.Itoa(r.MaxRoundFlows),
			}); err != nil {
				return err
			}
		}
	case traffic:
		rows, _, err := experiments.ExtensionTraffic(seed, opts...)
		if err != nil {
			return err
		}
		if err := w.Write([]string{
			"world", "sites", "hosts", "rate_per_min", "policy", "fault_intensity",
			"requests", "completed", "failed", "local_hits", "attempts",
			"p50_sec", "p95_sec", "p99_sec", "goodput_mbps", "site_skew",
			"replications", "removals",
		}); err != nil {
			return err
		}
		for _, r := range rows {
			if err := w.Write([]string{
				r.Label,
				strconv.Itoa(r.Sites),
				strconv.Itoa(r.Hosts),
				strconv.FormatFloat(r.RatePerMinute, 'f', 0, 64),
				r.Policy,
				strconv.Itoa(r.Intensity),
				strconv.Itoa(r.Requests),
				strconv.Itoa(r.Completed),
				strconv.Itoa(r.Failed),
				strconv.Itoa(r.LocalHits),
				strconv.Itoa(r.Attempts),
				strconv.FormatFloat(r.P50, 'f', 3, 64),
				strconv.FormatFloat(r.P95, 'f', 3, 64),
				strconv.FormatFloat(r.P99, 'f', 3, 64),
				strconv.FormatFloat(r.GoodputMbps, 'f', 3, 64),
				strconv.FormatFloat(r.SiteSkew, 'f', 3, 64),
				strconv.Itoa(r.Replications),
				strconv.Itoa(r.Removals),
			}); err != nil {
				return err
			}
		}
	default:
		return fmt.Errorf("-csv needs -fig 3, -fig 4, -table 1, -faults, -scale or -traffic")
	}
	return nil
}
