// Command gridbench regenerates the paper's evaluation artifacts — Fig. 3,
// Fig. 4, Table 1 — and the repository's ablation and extension
// experiments, printing each in the same rows/series form the paper
// reports.
//
//	gridbench -fig 3
//	gridbench -fig 4
//	gridbench -table 1
//	gridbench -ablations
//	gridbench -extensions
//	gridbench -all
package main

import (
	"encoding/csv"
	"flag"
	"fmt"
	"log"
	"os"
	"strconv"

	"github.com/hpclab/datagrid/internal/experiments"
	"github.com/hpclab/datagrid/internal/workload"
)

func main() {
	var (
		fig        = flag.Int("fig", 0, "figure number to regenerate (3 or 4)")
		table      = flag.Int("table", 0, "table number to regenerate (1)")
		ablations  = flag.Bool("ablations", false, "run the ablation studies")
		extensions = flag.Bool("extensions", false, "run the extension experiments")
		all        = flag.Bool("all", false, "run everything")
		asCSV      = flag.Bool("csv", false, "emit the selected figure/table as CSV (for plotting)")
		seed       = flag.Int64("seed", 42, "simulation seed")
	)
	flag.Parse()

	if *asCSV {
		if err := emitCSV(*fig, *table, *seed); err != nil {
			log.Fatalf("gridbench: %v", err)
		}
		return
	}

	ran := false
	show := func(name string, f func(int64) (string, error)) {
		ran = true
		out, err := f(*seed)
		if err != nil {
			log.Fatalf("gridbench: %s: %v", name, err)
		}
		fmt.Println(out)
	}

	if *all || *fig == 3 {
		show("figure 3", func(s int64) (string, error) {
			_, out, err := experiments.Figure3(s)
			return out, err
		})
	}
	if *all || *fig == 4 {
		show("figure 4", func(s int64) (string, error) {
			_, out, err := experiments.Figure4(s)
			return out, err
		})
	}
	if *all || *table == 1 {
		show("table 1", func(s int64) (string, error) {
			_, out, err := experiments.Table1(s)
			return out, err
		})
	}
	if *all || *ablations {
		show("selector ablation", func(s int64) (string, error) {
			_, out, err := experiments.AblationSelectors(s)
			return out, err
		})
		show("weight ablation", func(s int64) (string, error) {
			_, out, err := experiments.AblationWeights(s)
			return out, err
		})
		show("forecaster ablation", func(s int64) (string, error) {
			_, out, err := experiments.AblationForecasters(s)
			return out, err
		})
		show("latency ablation", func(s int64) (string, error) {
			_, out, err := experiments.AblationLatency(s)
			return out, err
		})
		show("adaptive parallelism ablation", func(s int64) (string, error) {
			_, out, err := experiments.AblationAutoStreams(s)
			return out, err
		})
	}
	if *all || *extensions {
		show("striped extension", func(s int64) (string, error) {
			_, out, err := experiments.ExtensionStriped(s)
			return out, err
		})
		show("scale extension", func(s int64) (string, error) {
			_, out, err := experiments.ExtensionScale(s)
			return out, err
		})
		show("replication extension", func(s int64) (string, error) {
			_, out, err := experiments.ExtensionReplication(s)
			return out, err
		})
		show("coallocation extension", func(s int64) (string, error) {
			_, out, err := experiments.ExtensionCoallocation(s)
			return out, err
		})
	}
	if !ran {
		flag.Usage()
	}
}

// emitCSV writes the selected artifact's structured rows as CSV.
func emitCSV(fig, table int, seed int64) error {
	w := csv.NewWriter(os.Stdout)
	defer w.Flush()
	switch {
	case fig == 3:
		rows, _, err := experiments.Figure3(seed)
		if err != nil {
			return err
		}
		if err := w.Write([]string{"size_mb", "ftp_sec", "gridftp_sec"}); err != nil {
			return err
		}
		for _, r := range rows {
			if err := w.Write([]string{
				strconv.FormatInt(r.SizeMB, 10),
				strconv.FormatFloat(r.FTPSeconds, 'f', 3, 64),
				strconv.FormatFloat(r.GridFTPSeconds, 'f', 3, 64),
			}); err != nil {
				return err
			}
		}
	case fig == 4:
		series, _, err := experiments.Figure4(seed)
		if err != nil {
			return err
		}
		if err := w.Write([]string{"streams", "size_mb", "sec"}); err != nil {
			return err
		}
		for _, s := range series {
			for _, size := range workload.PaperFileSizesMB {
				if err := w.Write([]string{
					strconv.Itoa(s.Streams),
					strconv.FormatInt(size, 10),
					strconv.FormatFloat(s.SecondsBySizeMB[size], 'f', 3, 64),
				}); err != nil {
					return err
				}
			}
		}
	case table == 1:
		res, _, err := experiments.Table1(seed)
		if err != nil {
			return err
		}
		if err := w.Write([]string{"host", "bw_pct", "cpu_idle_pct", "io_idle_pct", "score", "transfer_sec"}); err != nil {
			return err
		}
		for _, c := range res.Candidates {
			if err := w.Write([]string{
				c.Host,
				strconv.FormatFloat(c.BWPercent, 'f', 2, 64),
				strconv.FormatFloat(c.CPUIdle, 'f', 2, 64),
				strconv.FormatFloat(c.IOIdle, 'f', 2, 64),
				strconv.FormatFloat(c.Score, 'f', 2, 64),
				strconv.FormatFloat(c.TransferSeconds, 'f', 2, 64),
			}); err != nil {
				return err
			}
		}
	default:
		return fmt.Errorf("-csv needs -fig 3, -fig 4 or -table 1")
	}
	return nil
}
