package main

import (
	"bytes"
	"strings"
	"testing"

	"github.com/hpclab/datagrid/internal/experiments"
	"github.com/hpclab/datagrid/internal/workload"
)

func TestEmitCSV(t *testing.T) {
	cases := []struct {
		name    string
		fig     int
		table   int
		header  string
		rows    int
		wantErr bool
	}{
		{
			name:   "fig3",
			fig:    3,
			header: "size_mb,ftp_sec,gridftp_sec",
			rows:   len(workload.PaperFileSizesMB),
		},
		{
			name:   "fig4",
			fig:    4,
			header: "streams,size_mb,sec",
			rows:   len(workload.PaperStreamCounts) * len(workload.PaperFileSizesMB),
		},
		{
			name:   "table1",
			table:  1,
			header: "host,bw_pct,cpu_idle_pct,io_idle_pct,score,transfer_sec",
			rows:   4,
		},
		{name: "no selection", wantErr: true},
		{name: "unknown figure", fig: 7, wantErr: true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var buf bytes.Buffer
			err := emitCSV(tc.fig, tc.table, false, false, false, 42, 2, 1, &buf)
			if tc.wantErr {
				if err == nil {
					t.Fatal("emitCSV should have errored")
				}
				return
			}
			if err != nil {
				t.Fatalf("emitCSV: %v", err)
			}
			lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
			if lines[0] != tc.header {
				t.Errorf("header = %q, want %q", lines[0], tc.header)
			}
			if got := len(lines) - 1; got != tc.rows {
				t.Errorf("data rows = %d, want %d", got, tc.rows)
			}
		})
	}
}

// TestOptInGroupsStayOutOfAll pins the selection contract: -all never
// picks up the opt-in sweeps (their output is not part of the pinned
// byte-identical suite), and each opt-in flag selects exactly its group.
func TestOptInGroupsStayOutOfAll(t *testing.T) {
	for _, e := range selectEntries(true, 0, 0, false, false, false, false, false) {
		if e.Group == experiments.GroupFaults || e.Group == experiments.GroupScale ||
			e.Group == experiments.GroupTraffic {
			t.Errorf("-all selected opt-in entry %q", e.Name)
		}
	}
	scale := selectEntries(false, 0, 0, false, false, false, true, false)
	if len(scale) != 1 || scale[0].Name != "planet scale" {
		t.Errorf("-scale selected %d entries, want only planet scale", len(scale))
	}
	faults := selectEntries(false, 0, 0, false, false, true, false, false)
	if len(faults) != 1 || faults[0].Name != "fault tolerance" {
		t.Errorf("-faults selected %d entries, want only fault tolerance", len(faults))
	}
	traffic := selectEntries(false, 0, 0, false, false, false, false, true)
	if len(traffic) != 1 || traffic[0].Name != "traffic plane" {
		t.Errorf("-traffic selected %d entries, want only traffic plane", len(traffic))
	}
}

func TestRunWithoutSelectionPrintsUsage(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run(nil, &stdout, &stderr); code != 2 {
		t.Fatalf("exit code = %d, want 2", code)
	}
	if !strings.Contains(stderr.String(), "Usage of gridbench") {
		t.Errorf("stderr should carry usage text, got:\n%s", stderr.String())
	}
	if stdout.Len() != 0 {
		t.Errorf("stdout should be empty, got:\n%s", stdout.String())
	}
}

func TestRunRejectsBadFlags(t *testing.T) {
	for _, args := range [][]string{
		{"-bogus"},
		{"-all", "-parallel", "0"},
		{"-all", "-trials", "0"},
		{"-all", "-shards", "0"},
	} {
		var stdout, stderr bytes.Buffer
		if code := run(args, &stdout, &stderr); code != 2 {
			t.Errorf("run(%v) = %d, want 2", args, code)
		}
	}
}

// TestParallelOutputByteIdentical is the tentpole's contract: the full
// suite's output must not depend on the worker count. It runs the whole
// evaluation twice, sequentially and on an 8-worker pool, and requires
// byte equality.
func TestParallelOutputByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the full evaluation suite twice")
	}
	outputs := make([]string, 2)
	for i, parallel := range []string{"1", "8"} {
		var stdout, stderr bytes.Buffer
		args := []string{"-all", "-seed", "42", "-parallel", parallel}
		if code := run(args, &stdout, &stderr); code != 0 {
			t.Fatalf("run(%v) = %d, stderr:\n%s", args, code, stderr.String())
		}
		outputs[i] = stdout.String()
	}
	if outputs[0] != outputs[1] {
		t.Fatal("-parallel 1 and -parallel 8 outputs differ")
	}
}

// TestShardsOutputByteIdentical extends the contract across the space
// partition: -shards N must not change a single output byte either. The
// planet-scale sweep is the scenario that actually exercises the
// sharded engines; -all must also survive the flag untouched.
func TestShardsOutputByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the planet-scale sweep at several shard counts")
	}
	selections := [][]string{{"-all"}}
	if !raceEnabled {
		// The planet-scale sweep is the workload that exercises the
		// sharded engines, but ~40s per run makes it race-mode poison;
		// the CI shards determinism gate diffs it at every combination.
		selections = append(selections, [][]string{{"-scale"}, {"-scale", "-csv"}}...)
	}
	for _, sel := range selections {
		var want string
		for i, shards := range []string{"1", "4", "8"} {
			var stdout, stderr bytes.Buffer
			args := append(append([]string{}, sel...), "-seed", "42", "-parallel", "1", "-shards", shards)
			if code := run(args, &stdout, &stderr); code != 0 {
				t.Fatalf("run(%v) = %d, stderr:\n%s", args, code, stderr.String())
			}
			if i == 0 {
				want = stdout.String()
			} else if stdout.String() != want {
				t.Fatalf("%v: -shards %s output differs from -shards 1", sel, shards)
			}
		}
	}
}
