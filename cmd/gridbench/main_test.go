package main

import (
	"testing"
)

func TestEmitCSVRequiresTarget(t *testing.T) {
	if err := emitCSV(0, 0, 1); err == nil {
		t.Fatal("emitCSV without a figure/table should error")
	}
	if err := emitCSV(7, 0, 1); err == nil {
		t.Fatal("unknown figure should error")
	}
}
