//go:build !race

package main

// See race_enabled_test.go.
const raceEnabled = false
