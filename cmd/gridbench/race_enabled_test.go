//go:build race

package main

// raceEnabled steers the heavyweight byte-identity tests away from the
// full planet-scale sweep under the race detector, where it would blow
// the package's CI time budget; the race-mode sharding coverage lives
// in the internal Sharded suites, and the CI shards determinism gate
// byte-diffs the compiled binary's -scale output directly.
const raceEnabled = true
