// Command gridlint runs the repo's domain-specific static analyzers
// (internal/lint) over the module: wall-clock hygiene, determinism and
// seed provenance, lock-safe engine scheduling, snapshot discipline,
// event-handle lifetimes and dropped-error checks. It is wired into
// `make vet`, `make lint` and CI, and exits non-zero when any finding
// survives suppression directives.
//
// Usage:
//
//	gridlint [-list] [-run name[,name...]] [-unused=false] [-json] [-fix [-w]] [packages]
//
// Package patterns are module-relative ("./...", "./internal/...",
// "./cmd/gridlint"); the default is "./...". The module root is found by
// walking up from the current directory to the nearest go.mod.
//
// Packages are analyzed together in dependency order with a shared fact
// store, so cross-package facts (seed derivers, wall-clock returners,
// event retainers) flow from dependencies to the packages under
// analysis. Stale suppression directives are findings too; disable that
// with -unused=false.
//
// -json emits the findings (with any suggested fixes) as a JSON array.
// -fix prints the suggested fixes as a unified diff without touching
// anything; -fix -w applies them in place.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"github.com/hpclab/datagrid/internal/lint"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// jsonFinding is the machine-readable shape of one diagnostic, consumed
// by the CI artifact upload.
type jsonFinding struct {
	File     string              `json:"file"` // module-relative
	Line     int                 `json:"line"`
	Column   int                 `json:"column"`
	Analyzer string              `json:"analyzer"`
	Message  string              `json:"message"`
	Fixes    []lint.SuggestedFix `json:"fixes,omitempty"`
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("gridlint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	list := fs.Bool("list", false, "list analyzers and exit")
	only := fs.String("run", "", "comma-separated analyzer names to run (default: all)")
	unused := fs.Bool("unused", true, "report suppression directives that suppress nothing")
	asJSON := fs.Bool("json", false, "emit findings as JSON")
	fix := fs.Bool("fix", false, "print suggested fixes as a diff (dry run)")
	write := fs.Bool("w", false, "with -fix: apply suggested fixes in place")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *write && !*fix {
		fmt.Fprintln(stderr, "gridlint: -w requires -fix")
		return 2
	}

	analyzers := lint.All()
	if *list {
		for _, a := range analyzers {
			fmt.Fprintf(stdout, "%-20s %s\n", a.Name, a.Doc)
		}
		return 0
	}
	if *only != "" {
		want := map[string]bool{}
		for _, name := range strings.Split(*only, ",") {
			want[strings.TrimSpace(name)] = true
		}
		var selected []*lint.Analyzer
		for _, a := range analyzers {
			if want[a.Name] {
				selected = append(selected, a)
				delete(want, a.Name)
			}
		}
		for name := range want {
			fmt.Fprintf(stderr, "gridlint: unknown analyzer %q\n", name)
			return 2
		}
		analyzers = selected
	}

	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	modRoot, err := findModuleRoot()
	if err != nil {
		fmt.Fprintf(stderr, "gridlint: %v\n", err)
		return 2
	}
	loader, err := lint.NewLoader(modRoot)
	if err != nil {
		fmt.Fprintf(stderr, "gridlint: %v\n", err)
		return 2
	}
	pkgs, err := loader.LoadPatterns(patterns)
	if err != nil {
		fmt.Fprintf(stderr, "gridlint: %v\n", err)
		return 2
	}
	for _, pkg := range pkgs {
		for _, err := range pkg.TypeErrors {
			fmt.Fprintf(stderr, "gridlint: %s: type error: %v\n", pkg.Path, err)
		}
	}

	diags := lint.AnalyzeAll(loader, pkgs, analyzers, lint.Options{ReportUnused: *unused})

	if *fix {
		return applyFixMode(diags, modRoot, *write, stdout, stderr)
	}

	if *asJSON {
		findings := make([]jsonFinding, 0, len(diags))
		for _, d := range diags {
			findings = append(findings, jsonFinding{
				File:     relTo(modRoot, d.Pos.Filename),
				Line:     d.Pos.Line,
				Column:   d.Pos.Column,
				Analyzer: d.Analyzer,
				Message:  d.Message,
				Fixes:    d.Fixes,
			})
		}
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(findings); err != nil {
			fmt.Fprintf(stderr, "gridlint: %v\n", err)
			return 2
		}
		if len(diags) > 0 {
			return 1
		}
		return 0
	}

	for _, d := range diags {
		fmt.Fprintf(stdout, "%s:%d:%d: %s: %s\n",
			relTo(modRoot, d.Pos.Filename), d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
	}
	if len(diags) > 0 {
		fmt.Fprintf(stderr, "gridlint: %d finding(s)\n", len(diags))
		return 1
	}
	return 0
}

// applyFixMode previews (or, with -w, writes) every suggested fix the
// diagnostics carry. Findings without fixes are listed so the exit code
// keeps meaning "something needs attention".
func applyFixMode(diags []lint.Diagnostic, modRoot string, write bool, stdout, stderr io.Writer) int {
	var fixable []lint.Diagnostic
	unfixed := 0
	for _, d := range diags {
		if len(d.Fixes) > 0 {
			fixable = append(fixable, d)
		} else {
			fmt.Fprintf(stdout, "%s:%d:%d: %s: %s (no suggested fix)\n",
				relTo(modRoot, d.Pos.Filename), d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
			unfixed++
		}
	}
	fixed, err := lint.ApplyFixes(fixable, nil)
	if err != nil {
		fmt.Fprintf(stderr, "gridlint: %v\n", err)
		return 2
	}
	var names []string
	for name := range fixed {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		before, err := os.ReadFile(name)
		if err != nil {
			fmt.Fprintf(stderr, "gridlint: %v\n", err)
			return 2
		}
		if write {
			info, err := os.Stat(name)
			if err != nil {
				fmt.Fprintf(stderr, "gridlint: %v\n", err)
				return 2
			}
			if err := os.WriteFile(name, fixed[name], info.Mode().Perm()); err != nil {
				fmt.Fprintf(stderr, "gridlint: %v\n", err)
				return 2
			}
			fmt.Fprintf(stdout, "fixed %s\n", relTo(modRoot, name))
		} else {
			fmt.Fprint(stdout, lint.Diff(relTo(modRoot, name), before, fixed[name]))
		}
	}
	if !write && len(names) > 0 {
		fmt.Fprintf(stderr, "gridlint: %d fixable finding(s) in %d file(s); rerun with -fix -w to apply\n",
			len(fixable), len(names))
	}
	if unfixed > 0 || (!write && len(names) > 0) {
		return 1
	}
	return 0
}

func relTo(root, path string) string {
	rel, err := filepath.Rel(root, path)
	if err != nil {
		return path
	}
	return rel
}

func findModuleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod found above %s", dir)
		}
		dir = parent
	}
}
