// Command gridlint runs the repo's domain-specific static analyzers
// (internal/lint) over the module: wall-clock hygiene, determinism,
// lock-safe engine scheduling and dropped-error checks. It is wired into
// `make vet`, `make lint` and CI, and exits non-zero when any finding
// survives suppression directives.
//
// Usage:
//
//	gridlint [-list] [-run name[,name...]] [packages]
//
// Package patterns are module-relative ("./...", "./internal/...",
// "./cmd/gridlint"); the default is "./...". The module root is found by
// walking up from the current directory to the nearest go.mod.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"github.com/hpclab/datagrid/internal/lint"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("gridlint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	list := fs.Bool("list", false, "list analyzers and exit")
	only := fs.String("run", "", "comma-separated analyzer names to run (default: all)")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	analyzers := lint.All()
	if *list {
		for _, a := range analyzers {
			fmt.Fprintf(stdout, "%-16s %s\n", a.Name, a.Doc)
		}
		return 0
	}
	if *only != "" {
		want := map[string]bool{}
		for _, name := range strings.Split(*only, ",") {
			want[strings.TrimSpace(name)] = true
		}
		var selected []*lint.Analyzer
		for _, a := range analyzers {
			if want[a.Name] {
				selected = append(selected, a)
				delete(want, a.Name)
			}
		}
		for name := range want {
			fmt.Fprintf(stderr, "gridlint: unknown analyzer %q\n", name)
			return 2
		}
		analyzers = selected
	}

	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	modRoot, err := findModuleRoot()
	if err != nil {
		fmt.Fprintf(stderr, "gridlint: %v\n", err)
		return 2
	}
	loader, err := lint.NewLoader(modRoot)
	if err != nil {
		fmt.Fprintf(stderr, "gridlint: %v\n", err)
		return 2
	}
	pkgs, err := loader.LoadPatterns(patterns)
	if err != nil {
		fmt.Fprintf(stderr, "gridlint: %v\n", err)
		return 2
	}

	findings := 0
	for _, pkg := range pkgs {
		for _, err := range pkg.TypeErrors {
			fmt.Fprintf(stderr, "gridlint: %s: type error: %v\n", pkg.Path, err)
		}
		for _, d := range lint.Run(pkg, analyzers) {
			rel, err := filepath.Rel(modRoot, d.Pos.Filename)
			if err != nil {
				rel = d.Pos.Filename
			}
			fmt.Fprintf(stdout, "%s:%d:%d: %s: %s\n", rel, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
			findings++
		}
	}
	if findings > 0 {
		fmt.Fprintf(stderr, "gridlint: %d finding(s)\n", findings)
		return 1
	}
	return 0
}

func findModuleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod found above %s", dir)
		}
		dir = parent
	}
}
