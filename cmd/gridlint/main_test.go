package main

import (
	"strings"
	"testing"
)

func TestListAnalyzers(t *testing.T) {
	var out, errOut strings.Builder
	if code := run([]string{"-list"}, &out, &errOut); code != 0 {
		t.Fatalf("gridlint -list exited %d: %s", code, errOut.String())
	}
	for _, name := range []string{"wallclock", "determinism", "lockedcallback", "errcheck"} {
		if !strings.Contains(out.String(), name) {
			t.Errorf("-list output missing analyzer %q:\n%s", name, out.String())
		}
	}
}

func TestUnknownAnalyzer(t *testing.T) {
	var out, errOut strings.Builder
	if code := run([]string{"-run", "nosuch", "./internal/simulation"}, &out, &errOut); code != 2 {
		t.Fatalf("unknown analyzer: exit %d, want 2 (stderr: %s)", code, errOut.String())
	}
}

// TestCleanPackages runs the full suite over packages that carry
// fix-or-suppress state from this repo's history; they must stay clean.
func TestCleanPackages(t *testing.T) {
	var out, errOut strings.Builder
	code := run([]string{"./internal/simulation", "./internal/netsim", "./internal/ftp", "./internal/gridftp"},
		&out, &errOut)
	if code != 0 {
		t.Fatalf("gridlint exited %d\nstdout:\n%s\nstderr:\n%s", code, out.String(), errOut.String())
	}
}
