package datagrid

import (
	"strings"
	"testing"

	"github.com/hpclab/datagrid/internal/experiments"
)

// BenchmarkFaultsSweep runs the fault-tolerance extension — the opt-in
// `gridbench -faults` workload — through the worker pool and reports the
// headline quantities at the highest injected intensity: per-policy
// completion counts and mean completed-transfer time. `make bench-faults`
// records the output into BENCH_faults.json.
func BenchmarkFaultsSweep(b *testing.B) {
	var rows []experiments.FaultsResult
	for i := 0; i < b.N; i++ {
		var err error
		rows, _, err = experiments.ExtensionFaults(benchSeed)
		if err != nil {
			b.Fatal(err)
		}
	}
	maxIntensity := 0
	for _, r := range rows {
		if r.Intensity > maxIntensity {
			maxIntensity = r.Intensity
		}
	}
	for _, r := range rows {
		if r.Intensity != maxIntensity {
			continue
		}
		tag := strings.ReplaceAll(r.Policy, "-", "")
		b.ReportMetric(float64(r.Completed), tag+"-completed")
		b.ReportMetric(r.MeanSeconds, tag+"-sec")
	}
	b.ReportMetric(float64(maxIntensity), "intensity")
}
